"""Floating-point benchmarks (paper Table 3, middle block).

euler, fft, FourierTest, LuFactor, moldyn, NeuralNet, shallow — the
numeric programs where the paper reports 3-4x speedups on 4 CPUs.
"""

from .registry import FLOATING, Workload, register

# ---------------------------------------------------------------------------
# euler — 2D fluid dynamics stencil (paper data set 33x9)
# ---------------------------------------------------------------------------

_EULER = """
class Main {
    static int main() {
        int nx = %(nx)d;
        int ny = %(ny)d;
        int steps = %(steps)d;
        float[][] u = new float[nx][ny];
        float[][] f = new float[nx][ny];
        for (int i = 0; i < nx; i++) {
            for (int j = 0; j < ny; j++) {
                u[i][j] = (float)(i * 3 + j) * 0.01;
            }
        }
        for (int t = 0; t < steps; t++) {
            // flux computation (parallel over rows)
            for (int i = 1; i < nx - 1; i++) {
                for (int j = 1; j < ny - 1; j++) {
                    f[i][j] = 0.25 * (u[i-1][j] + u[i+1][j]
                                      + u[i][j-1] + u[i][j+1])
                              - u[i][j];
                }
            }
            // update sweep
            for (int i = 1; i < nx - 1; i++) {
                for (int j = 1; j < ny - 1; j++) {
                    u[i][j] = u[i][j] + 0.5 * f[i][j];
                }
            }
        }
        float check = 0.0;
        for (int i = 0; i < nx; i++) {
            for (int j = 0; j < ny; j++) { check = check + u[i][j]; }
        }
        Sys.printFloat(check);
        return (int)check;
    }
}
"""


def _euler(size):
    params = {"small": (17, 9, 4), "default": (33, 9, 6),
              "large": (49, 17, 8)}[size]
    return _EULER % {"nx": params[0], "ny": params[1], "steps": params[2]}


register(Workload(
    name="euler",
    category=FLOATING,
    description="2D fluid dynamics stencil solver",
    source_fn=_euler,
    analyzable=True,
    data_set_sensitive=True,
    paper={"dataset": "33x9",
           "note": "many STLs contribute equally; loop level choice "
                   "depends on data set size"},
))

# ---------------------------------------------------------------------------
# fft — iterative radix-2 FFT (large iterations overflow buffers)
# ---------------------------------------------------------------------------

_FFT = """
class Main {
    static int main() {
        int n = %(n)d;
        float[] re = new float[n];
        float[] im = new float[n];
        for (int i = 0; i < n; i++) {
            re[i] = Math.sin((float)i * 0.1) + 0.5 * Math.cos((float)i * 0.3);
            im[i] = 0.0;
        }
        // bit-reversal permutation
        int j = 0;
        for (int i = 0; i < n - 1; i++) {
            if (i < j) {
                float tr = re[i]; re[i] = re[j]; re[j] = tr;
                float ti = im[i]; im[i] = im[j]; im[j] = ti;
            }
            int k = n >> 1;
            while (k <= j) { j -= k; k = k >> 1; }
            j += k;
        }
        // butterfly stages
        int span = 1;
        while (span < n) {
            int step = span << 1;
            for (int group = 0; group < span; group++) {
                float ang = -3.14159265358979 * (float)group / (float)span;
                float wr = Math.cos(ang);
                float wi = Math.sin(ang);
                for (int base = group; base < n; base += step) {
                    int match = base + span;
                    float tr = wr * re[match] - wi * im[match];
                    float ti = wr * im[match] + wi * re[match];
                    re[match] = re[base] - tr;
                    im[match] = im[base] - ti;
                    re[base] = re[base] + tr;
                    im[base] = im[base] + ti;
                }
            }
            span = step;
        }
        float check = 0.0;
        for (int i = 0; i < n; i++) {
            check = check + re[i] * re[i] + im[i] * im[i];
        }
        Sys.printFloat(check);
        return (int)check;
    }
}
"""


def _fft(size):
    n = {"small": 128, "default": 256, "large": 1024}[size]
    return _FFT % {"n": n}


register(Workload(
    name="fft",
    category=FLOATING,
    description="Radix-2 fast Fourier transform",
    source_fn=_fft,
    analyzable=True,
    paper={"dataset": "1024",
           "note": "buffer-overflow stalls on the large STL iterations "
                   "of late butterfly stages produce wait-used state"},
))

# ---------------------------------------------------------------------------
# FourierTest — Fourier series coefficients (jBYTEmark)
# ---------------------------------------------------------------------------

_FOURIER = """
class Main {
    static float func(float x) {
        return (x + 1.0) * (x + 1.0) / (x * 0.5 + 2.0);
    }
    static int main() {
        int ncoeff = %(ncoeff)d;
        int nsteps = %(nsteps)d;
        float interval = 2.0;
        float h = interval / (float)nsteps;
        float check = 0.0;
        for (int k = 0; k < ncoeff; k++) {
            // trapezoid integration of f(x)*cos(k*pi*x/L)
            float omega = 3.14159265358979 * (float)k / interval;
            float acc = 0.5 * (func(0.0) + func(interval)
                               * Math.cos(omega * interval));
            for (int s = 1; s < nsteps; s++) {
                float x = h * (float)s;
                acc = acc + func(x) * Math.cos(omega * x);
            }
            float coeff = acc * h * 2.0 / interval;
            check = check + coeff * coeff;
        }
        Sys.printFloat(check);
        return (int)check;
    }
}
"""


def _fourier(size):
    params = {"small": (20, 30), "default": (40, 50),
              "large": (80, 80)}[size]
    return _FOURIER % {"ncoeff": params[0], "nsteps": params[1]}


register(Workload(
    name="FourierTest",
    category=FLOATING,
    description="Fourier coefficients via numeric integration (jBYTEmark)",
    source_fn=_fourier,
    analyzable=True,
    paper={"note": "outer coefficient loop parallelizes cleanly"},
))

# ---------------------------------------------------------------------------
# LuFactor — LU decomposition with partial pivoting
# ---------------------------------------------------------------------------

_LUFACTOR = """
class Main {
    static int main() {
        int n = %(n)d;
        float[][] a = new float[n][n];
        int seed = 42;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) {
                seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
                a[i][j] = (float)(seed %% 2000 - 1000) * 0.001;
            }
            a[i][i] = a[i][i] + 4.0;
        }
        float det = 1.0;
        for (int k = 0; k < n - 1; k++) {
            // partial pivot (serial, short)
            int pivot = k;
            float best = Math.fabs(a[k][k]);
            for (int i = k + 1; i < n; i++) {
                float v = Math.fabs(a[i][k]);
                if (v > best) { best = v; pivot = i; }
            }
            if (pivot != k) {
                float[] tmp = a[k];
                a[k] = a[pivot];
                a[pivot] = tmp;
                det = -det;
            }
            // elimination: rows are independent (parallel)
            for (int i = k + 1; i < n; i++) {
                float m = a[i][k] / a[k][k];
                a[i][k] = m;
                for (int j = k + 1; j < n; j++) {
                    a[i][j] = a[i][j] - m * a[k][j];
                }
            }
        }
        for (int k = 0; k < n; k++) { det = det * a[k][k]; }
        float check = 0.0;
        for (int i = 0; i < n; i++) { check = check + a[i][i]; }
        Sys.printFloat(check);
        return (int)check;
    }
}
"""


def _lufactor(size):
    n = {"small": 14, "default": 24, "large": 40}[size]
    return _LUFACTOR % {"n": n}


register(Workload(
    name="LuFactor",
    category=FLOATING,
    description="LU factorization with partial pivoting",
    source_fn=_lufactor,
    analyzable=True,
    data_set_sensitive=True,
    paper={"dataset": "101x101",
           "note": "lower loop-nest levels must be chosen for larger "
                   "data sets to avoid speculative buffer overflow"},
))

# ---------------------------------------------------------------------------
# moldyn — molecular dynamics (Java Grande)
# ---------------------------------------------------------------------------

_MOLDYN = """
class Main {
    static int main() {
        int n = %(n)d;
        int steps = %(steps)d;
        float[] x = new float[n];
        float[] y = new float[n];
        float[] vx = new float[n];
        float[] vy = new float[n];
        float[] fx = new float[n];
        float[] fy = new float[n];
        for (int i = 0; i < n; i++) {
            x[i] = (float)(i %% 8) * 1.2;
            y[i] = (float)(i / 8) * 1.2;
            vx[i] = 0.01 * (float)(i %% 3 - 1);
            vy[i] = 0.01 * (float)(i %% 5 - 2);
        }
        float energy = 0.0;
        for (int t = 0; t < steps; t++) {
            // forces: full N^2, each particle independent (parallel)
            for (int i = 0; i < n; i++) {
                float fxi = 0.0;
                float fyi = 0.0;
                for (int j = 0; j < n; j++) {
                    if (j != i) {
                        float dx = x[i] - x[j];
                        float dy = y[i] - y[j];
                        float r2 = dx * dx + dy * dy + 0.01;
                        float inv = 1.0 / r2;
                        float f = (inv * inv - 0.5 * inv) * inv;
                        fxi = fxi + f * dx;
                        fyi = fyi + f * dy;
                    }
                }
                fx[i] = fxi;
                fy[i] = fyi;
            }
            // integrate (parallel)
            for (int i = 0; i < n; i++) {
                vx[i] = vx[i] + 0.001 * fx[i];
                vy[i] = vy[i] + 0.001 * fy[i];
                x[i] = x[i] + vx[i];
                y[i] = y[i] + vy[i];
            }
            float e = 0.0;
            for (int i = 0; i < n; i++) {
                e = e + vx[i] * vx[i] + vy[i] * vy[i];
            }
            energy = energy + e;
        }
        Sys.printFloat(energy);
        return (int)energy;
    }
}
"""


def _moldyn(size):
    params = {"small": (16, 3), "default": (24, 4),
              "large": (48, 5)}[size]
    return _MOLDYN % {"n": params[0], "steps": params[1]}


register(Workload(
    name="moldyn",
    category=FLOATING,
    description="Molecular dynamics N-body (Java Grande)",
    source_fn=_moldyn,
    analyzable=True,
    paper={"note": "pairwise force loops parallelize; reductions on "
                   "kinetic energy"},
))

# ---------------------------------------------------------------------------
# NeuralNet — MLP training (35x8x8; hoisting showcase)
# ---------------------------------------------------------------------------

_NEURALNET = """
class Main {
    static int main() {
        int nin = %(nin)d;
        int nhid = %(nhid)d;
        int nout = %(nout)d;
        int epochs = %(epochs)d;
        float[][] w1 = new float[nhid][nin];
        float[][] w2 = new float[nout][nhid];
        float[] input = new float[nin];
        float[] hidden = new float[nhid];
        float[] output = new float[nout];
        float[] target = new float[nout];
        float[] dout = new float[nout];
        int seed = 7;
        for (int h = 0; h < nhid; h++) {
            for (int i = 0; i < nin; i++) {
                seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
                w1[h][i] = (float)(seed %% 100 - 50) * 0.01;
            }
        }
        for (int o = 0; o < nout; o++) {
            for (int h = 0; h < nhid; h++) {
                seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
                w2[o][h] = (float)(seed %% 100 - 50) * 0.01;
            }
        }
        for (int i = 0; i < nin; i++) {
            input[i] = (float)(i %% 5) * 0.2;
        }
        for (int o = 0; o < nout; o++) {
            target[o] = (float)(o %% 2);
        }
        float err = 0.0;
        for (int e = 0; e < epochs; e++) {
            // forward: hidden layer (parallel over h; hoisting target —
            // small loops entered every epoch)
            for (int h = 0; h < nhid; h++) {
                float s = 0.0;
                for (int i = 0; i < nin; i++) {
                    s = s + w1[h][i] * input[i];
                }
                hidden[h] = 1.0 / (1.0 + Math.exp(-s));
            }
            for (int o = 0; o < nout; o++) {
                float s = 0.0;
                for (int h = 0; h < nhid; h++) {
                    s = s + w2[o][h] * hidden[h];
                }
                output[o] = 1.0 / (1.0 + Math.exp(-s));
            }
            // backward
            err = 0.0;
            for (int o = 0; o < nout; o++) {
                float d = target[o] - output[o];
                dout[o] = d * output[o] * (1.0 - output[o]);
                err = err + d * d;
            }
            for (int o = 0; o < nout; o++) {
                for (int h = 0; h < nhid; h++) {
                    w2[o][h] = w2[o][h] + 0.3 * dout[o] * hidden[h];
                }
            }
            for (int h = 0; h < nhid; h++) {
                float back = 0.0;
                for (int o = 0; o < nout; o++) {
                    back = back + dout[o] * w2[o][h];
                }
                float dh = back * hidden[h] * (1.0 - hidden[h]);
                for (int i = 0; i < nin; i++) {
                    w1[h][i] = w1[h][i] + 0.3 * dh * input[i];
                }
            }
        }
        Sys.printFloat(err);
        return (int)(err * 1000.0);
    }
}
"""


def _neuralnet(size):
    params = {"small": (20, 8, 8, 6), "default": (35, 8, 8, 10),
              "large": (64, 16, 8, 12)}[size]
    return _NEURALNET % {"nin": params[0], "nhid": params[1],
                         "nout": params[2], "epochs": params[3]}


register(Workload(
    name="NeuralNet",
    category=FLOATING,
    description="Back-propagation neural network (35x8x8)",
    source_fn=_neuralnet,
    data_set_sensitive=True,
    paper={"dataset": "35x8x8",
           "note": "two loops use hoisted startup/shutdown but benefit "
                   "only slightly", "key_opt": "hoisting"},
))

# ---------------------------------------------------------------------------
# shallow — shallow water simulation (stencil sweeps)
# ---------------------------------------------------------------------------

_SHALLOW = """
class Main {
    static int main() {
        int n = %(n)d;
        int steps = %(steps)d;
        float[][] p = new float[n][n];
        float[][] u = new float[n][n];
        float[][] v = new float[n][n];
        float[][] pn = new float[n][n];
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) {
                p[i][j] = 10.0 + Math.sin((float)(i + j) * 0.3);
            }
        }
        for (int t = 0; t < steps; t++) {
            // velocity update (parallel over rows)
            for (int i = 1; i < n - 1; i++) {
                for (int j = 1; j < n - 1; j++) {
                    u[i][j] = u[i][j] - 0.1 * (p[i+1][j] - p[i-1][j]);
                    v[i][j] = v[i][j] - 0.1 * (p[i][j+1] - p[i][j-1]);
                }
            }
            // height update
            for (int i = 1; i < n - 1; i++) {
                for (int j = 1; j < n - 1; j++) {
                    pn[i][j] = p[i][j] - 0.1 * (u[i+1][j] - u[i-1][j]
                                                + v[i][j+1] - v[i][j-1]);
                }
            }
            for (int i = 1; i < n - 1; i++) {
                for (int j = 1; j < n - 1; j++) {
                    p[i][j] = pn[i][j];
                }
            }
        }
        float check = 0.0;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { check = check + p[i][j]; }
        }
        Sys.printFloat(check);
        return (int)check;
    }
}
"""


def _shallow(size):
    params = {"small": (16, 3), "default": (24, 4),
              "large": (48, 5)}[size]
    return _SHALLOW % {"n": params[0], "steps": params[1]}


register(Workload(
    name="shallow",
    category=FLOATING,
    description="Shallow water equation solver (stencil sweeps)",
    source_fn=_shallow,
    analyzable=True,
    data_set_sensitive=True,
    paper={"dataset": "256x256",
           "note": "loop level selection depends on grid size"},
))
