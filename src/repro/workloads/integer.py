"""Integer benchmarks (paper Table 3, upper block).

MiniJava ports of the 14 integer programs: jBYTEmark (Assignment,
BitOps, EmFloatPnt, Huffman, IDEA, NumHeapSort), SPECjvm98 (compress,
db, jess), and the other applications (deltaBlue, jLex, MipsSimulator,
monteCarlo, raytrace — the integer ray tracer variant).

Every program prints a checksum so differential tests can compare the
sequential, profiled, and speculative runs.
"""

from .registry import INTEGER, Workload, register

# ---------------------------------------------------------------------------
# Assignment — resource allocation over a cost matrix
# ---------------------------------------------------------------------------

_ASSIGNMENT = """
class Main {
    static int main() {
        int n = %(n)d;
        int[][] cost = new int[n][n];
        int seed = 9901;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) {
                seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
                cost[i][j] = seed %% 1000;
            }
        }
        // Row reduction: subtract each row's minimum.
        for (int i = 0; i < n; i++) {
            int m = cost[i][0];
            for (int j = 1; j < n; j++) {
                m = Math.imin(m, cost[i][j]);
            }
            for (int j = 0; j < n; j++) {
                cost[i][j] = cost[i][j] - m;
            }
        }
        // Column reduction.
        for (int j = 0; j < n; j++) {
            int m = cost[0][j];
            for (int i = 1; i < n; i++) {
                m = Math.imin(m, cost[i][j]);
            }
            for (int i = 0; i < n; i++) {
                cost[i][j] = cost[i][j] - m;
            }
        }
        // Greedy assignment on the reduced matrix.
        int[] rowUsed = new int[n];
        int[] colUsed = new int[n];
        int total = 0;
        for (int pass = 0; pass < n; pass++) {
            int bi = -1;
            int bj = -1;
            int best = 0x7FFFFFFF;
            for (int i = 0; i < n; i++) {
                if (rowUsed[i] == 0) {
                    for (int j = 0; j < n; j++) {
                        if (colUsed[j] == 0 && cost[i][j] < best) {
                            best = cost[i][j];
                            bi = i;
                            bj = j;
                        }
                    }
                }
            }
            rowUsed[bi] = 1;
            colUsed[bj] = 1;
            total += best;
        }
        Sys.printInt(total);
        return total;
    }
}
"""


def _assignment(size):
    n = {"small": 16, "default": 26, "large": 40}[size]
    return _ASSIGNMENT % {"n": n}


register(Workload(
    name="Assignment",
    category=INTEGER,
    description="Resource allocation over a cost matrix (jBYTEmark)",
    source_fn=_assignment,
    analyzable=True,
    data_set_sensitive=True,
    paper={"note": "many STLs of equal weight; multilevel helps slightly;"
                   " best decomposition level depends on the data set",
           "dataset": "51x51"},
))

# ---------------------------------------------------------------------------
# BitOps — bit array operations (resetable inductor showcase)
# ---------------------------------------------------------------------------

_BITOPS = """
class Main {
    static int main() {
        int words = %(words)d;
        int ops = %(ops)d;
        int[] bitmap = new int[words];
        int pos = 0;
        int checksum = 0;
        int seed = 333;
        for (int i = 0; i < ops; i++) {
            int w = pos >> 5;
            int b = pos & 31;
            bitmap[w] = bitmap[w] ^ (1 << b);
            checksum += (bitmap[w] >> b) & 1;
            // stride > 32 bits: consecutive iterations touch different
            // words, so only the reset-able position carries
            pos = pos + 37;
            if (pos >= words * 32) {
                seed = (seed * 2531011 + 17) & 0x7FFFFFFF;
                pos = seed %% 31;
            }
        }
        int total = 0;
        for (int w = 0; w < words; w++) {
            int v = bitmap[w];
            int c = 0;
            while (v != 0) { c += v & 1; v = v >>> 1; }
            total += c;
        }
        Sys.printInt(checksum);
        Sys.printInt(total);
        return checksum;
    }
}
"""


def _bitops(size):
    params = {"small": (64, 1500), "default": (128, 3500),
              "large": (256, 8000)}[size]
    return _BITOPS % {"words": params[0], "ops": params[1]}


register(Workload(
    name="BitOps",
    category=INTEGER,
    description="Bit array operations (jBYTEmark)",
    source_fn=_bitops,
    paper={"note": "the reset-able non-communicating loop inductor "
                   "dramatically improves BitOps (loop-carried dependency "
                   "removed from small threads)",
           "key_opt": "resetable_inductors"},
))

# ---------------------------------------------------------------------------
# compress — LZW-flavoured compression (mostly serial; manual transform)
# ---------------------------------------------------------------------------

_COMPRESS = """
class Main {
    static int main() {
        int n = %(n)d;
        int[] input = new int[n];
        int seed = 4242;
        for (int i = 0; i < n; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            input[i] = (seed >> 3) %% 64;
        }
        int[] hashTable = new int[4096];
        int[] codeOf = new int[4096];
        for (int i = 0; i < 4096; i++) { hashTable[i] = -1; }
        int nextCode = 64;
        int prefix = input[0];
        int outsum = 0;
        int outcount = 0;
        for (int i = 1; i < n; i++) {
            int c = input[i];
            int key = ((prefix << 6) ^ c) & 4095;
            if (hashTable[key] == (prefix << 6) + c) {
                prefix = codeOf[key];
            } else {
                outsum = (outsum + prefix * 31 + outcount) & 0xFFFFFF;
                outcount++;
                if (nextCode < 4096) {
                    hashTable[key] = (prefix << 6) + c;
                    codeOf[key] = nextCode;
                    nextCode++;
                }
                prefix = c;
            }
        }
        Sys.printInt(outsum);
        Sys.printInt(outcount);
        return outsum;
    }
}
"""

_COMPRESS_MANUAL = """
class Main {
    // Manual transform (paper Table 4): compress independent blocks,
    // guessing that each block starts a fresh dictionary, so block
    // iterations carry no dependency.
    static int[] input;
    static int blockSum(int start, int len) {
        // Small per-block dictionaries keep one block's speculative
        // write state within the 64-line store buffers.
        int[] hashTable = new int[128];
        int[] codeOf = new int[128];
        for (int i = 0; i < 128; i++) { hashTable[i] = -1; }
        int nextCode = 64;
        int prefix = input[start];
        int outsum = 0;
        int outcount = 0;
        for (int i = start + 1; i < start + len; i++) {
            int c = input[i];
            int key = ((prefix << 6) ^ c) & 127;
            if (hashTable[key] == (prefix << 6) + c) {
                prefix = codeOf[key];
            } else {
                outsum = (outsum + prefix * 31 + outcount) & 0xFFFFFF;
                outcount++;
                if (nextCode < 128) {
                    hashTable[key] = (prefix << 6) + c;
                    codeOf[key] = nextCode;
                    nextCode++;
                }
                prefix = c;
            }
        }
        return (outsum << 8) + outcount;
    }
    static int main() {
        int n = %(n)d;
        int block = %(block)d;
        input = new int[n];
        int seed = 4242;
        for (int i = 0; i < n; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            input[i] = (seed >> 3) %% 64;
        }
        int total = 0;
        for (int b = 0; b + block <= n; b += block) {
            total = (total + blockSum(b, block)) & 0xFFFFFF;
        }
        Sys.printInt(total);
        return total;
    }
}
"""


def _compress(size):
    n = {"small": 1500, "default": 3500, "large": 8000}[size]
    return _COMPRESS % {"n": n}


def _compress_manual(size):
    n = {"small": 1500, "default": 3500, "large": 8000}[size]
    return _COMPRESS_MANUAL % {"n": n, "block": 175}


register(Workload(
    name="compress",
    category=INTEGER,
    description="LZW-style compression (SPECjvm98)",
    source_fn=_compress,
    manual_variant_fn=_compress_manual,
    manual_notes={"difficulty": "Low", "compiler_optimizable": False,
                  "lines": 13,
                  "operation": "Guess next offset when compressing/"
                               "uncompressing data"},
    paper={"note": "significant run-violated/wait-violated state; truly "
                   "dynamic violations; manual block transform needed"},
))

# ---------------------------------------------------------------------------
# db — in-memory database operations (sync-lock showcase)
# ---------------------------------------------------------------------------

_DB = """
class TxnLog {
    int count;
    int threshold;
    synchronized void record(int x) { count = count + (x & 1); }
    synchronized int quota() { return threshold; }
}
class Main {
    static int main() {
        int nrec = %(nrec)d;
        int nops = %(nops)d;
        int[] keys = new int[nrec];
        int[] vals = new int[nrec];
        TxnLog log = new TxnLog();
        log.threshold = 180;
        for (int i = 0; i < nrec; i++) {
            keys[i] = (i * 7919) %% nrec;
            vals[i] = i * 3;
        }
        int cursor = 0;
        int found = 0;
        for (int op = 0; op < nops; op++) {
            // Hash the operation id first (short setup), then advance
            // the shared cursor: a mid-iteration carried dependency
            // that the thread synchronizing lock protects.
            int h = (op * 2654435761) & 0x7FFFFFFF;
            h = (h >> 7) %% 977;
            h = (h * h + op) %% 751;
            cursor = (cursor * 31 + h + 7) %% nrec;
            int key = cursor;
            int lo = key;
            int sum = 0;
            // probe: scan a small window for the key
            for (int k = 0; k < 24; k++) {
                int idx = (key + k * k) %% nrec;
                if (keys[idx] == key) { lo = idx; }
                sum += vals[idx] & 15;
            }
            vals[lo] = (vals[lo] + sum) & 0xFFFF;
            // consult the transaction monitor (synchronized read every
            // operation: paper Table 3 column "JVM - Java lock")
            if (sum > log.quota()) { log.record(sum); }
            found += sum;
        }
        Sys.printInt(found);
        Sys.printInt(cursor);
        Sys.printInt(log.count);
        return found;
    }
}
"""

_DB_MANUAL = """
class TxnLog {
    int count;
    int threshold;
    synchronized void record(int x) { count = count + (x & 1); }
    synchronized int quota() { return threshold; }
}
class Main {
    // Manual transform (paper Table 4): schedule the loop-carried
    // cursor update so the dependency arc is short: the cursor only
    // depends on the op index, so compute it from op directly.
    static int main() {
        int nrec = %(nrec)d;
        int nops = %(nops)d;
        int[] keys = new int[nrec];
        int[] vals = new int[nrec];
        TxnLog log = new TxnLog();
        log.threshold = 180;
        for (int i = 0; i < nrec; i++) {
            keys[i] = (i * 7919) %% nrec;
            vals[i] = i * 3;
        }
        int found = 0;
        int cursor = 0;
        for (int op = 0; op < nops; op++) {
            int c = (op * 2647 + 7) %% nrec;
            int key = c;
            int lo = key;
            int sum = 0;
            for (int k = 0; k < 24; k++) {
                int idx = (key + k * k) %% nrec;
                if (keys[idx] == key) { lo = idx; }
                sum += vals[idx] & 15;
            }
            vals[lo] = (vals[lo] + sum) & 0xFFFF;
            if (sum > log.quota()) { log.record(sum); }
            found += sum;
            cursor = c;
        }
        Sys.printInt(found);
        Sys.printInt(cursor);
        Sys.printInt(log.count);
        return found;
    }
}
"""


def _db(size):
    params = {"small": (128, 400), "default": (256, 1000),
              "large": (512, 2400)}[size]
    return _DB % {"nrec": params[0], "nops": params[1]}


def _db_manual(size):
    params = {"small": (128, 400), "default": (256, 1000),
              "large": (512, 2400)}[size]
    return _DB_MANUAL % {"nrec": params[0], "nops": params[1]}


register(Workload(
    name="db",
    category=INTEGER,
    description="In-memory database operations (SPECjvm98)",
    source_fn=_db,
    manual_variant_fn=_db_manual,
    manual_notes={"difficulty": "Low", "compiler_optimizable": True,
                  "lines": 4,
                  "operation": "Schedule loop carried dependency"},
    paper={"note": "thread synchronizing lock prevents performance-"
                   "degrading violations; large serial section limits "
                   "total speedup", "key_opt": "sync_locks"},
))

# ---------------------------------------------------------------------------
# deltaBlue — incremental constraint solver (chains)
# ---------------------------------------------------------------------------

_DELTABLUE = """
class Main {
    static int main() {
        int chains = %(chains)d;
        int length = %(length)d;
        int[][] strength = new int[chains][length];
        int[][] value = new int[chains][length];
        int seed = 777;
        for (int c = 0; c < chains; c++) {
            for (int i = 0; i < length; i++) {
                seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
                strength[c][i] = seed %% 7;
            }
        }
        int checksum = 0;
        // Planner passes: each chain is independent (parallel), but
        // propagation inside a chain is serial.
        for (int pass = 0; pass < %(passes)d; pass++) {
            for (int c = 0; c < chains; c++) {
                int v = pass + c;
                for (int i = 0; i < length; i++) {
                    if (strength[c][i] > 2) {
                        v = v * 2 + strength[c][i];
                    } else {
                        v = v + 1;
                    }
                    v = v & 0xFFFF;
                    value[c][i] = v;
                }
            }
        }
        for (int c = 0; c < chains; c++) {
            checksum = (checksum + value[c][length - 1]) & 0xFFFFFF;
        }
        Sys.printInt(checksum);
        return checksum;
    }
}
"""


def _deltablue(size):
    params = {"small": (10, 30, 6), "default": (20, 50, 10),
              "large": (40, 80, 14)}[size]
    return _DELTABLUE % {"chains": params[0], "length": params[1],
                         "passes": params[2]}


register(Workload(
    name="deltaBlue",
    category=INTEGER,
    description="Incremental dataflow constraint solver",
    source_fn=_deltablue,
    paper={"note": "significant serial execution not covered by any "
                   "potential STL limits total speedup"},
))

# ---------------------------------------------------------------------------
# EmFloatPnt — software floating-point emulation (load imbalance)
# ---------------------------------------------------------------------------

_EMFLOAT = """
class Main {
    // Emulated FP value: packed sign/exponent/mantissa in ints.
    static int emMul(int a, int b) {
        int signA = a >>> 31;
        int signB = b >>> 31;
        int expA = (a >> 23) & 0xFF;
        int expB = (b >> 23) & 0xFF;
        int manA = (a & 0x7FFFFF) | 0x800000;
        int manB = (b & 0x7FFFFF) | 0x800000;
        int hi = (manA >> 12) * (manB >> 12);
        int exp = expA + expB - 127;
        // normalize: variable-length loop (load imbalance source)
        while (hi >= 0x1000000) { hi = hi >> 1; exp++; }
        while (hi != 0 && hi < 0x800000) { hi = hi << 1; exp--; }
        int sign = signA ^ signB;
        return (sign << 31) | ((exp & 0xFF) << 23) | (hi & 0x7FFFFF);
    }
    static int emAdd(int a, int b) {
        int expA = (a >> 23) & 0xFF;
        int expB = (b >> 23) & 0xFF;
        int manA = (a & 0x7FFFFF) | 0x800000;
        int manB = (b & 0x7FFFFF) | 0x800000;
        while (expA > expB) { manB = manB >> 1; expB++; }
        while (expB > expA) { manA = manA >> 1; expA++; }
        int man = manA + manB;
        int exp = expA;
        while (man >= 0x1000000) { man = man >> 1; exp++; }
        return ((exp & 0xFF) << 23) | (man & 0x7FFFFF);
    }
    static int main() {
        int n = %(n)d;
        int[] xs = new int[n];
        int[] ys = new int[n];
        int seed = 31337;
        for (int i = 0; i < n; i++) {
            seed = (seed * 69069 + 5) & 0x7FFFFFFF;
            xs[i] = (seed & 0x7FFFFF) | (((i %% 40) + 100) << 23);
            seed = (seed * 69069 + 5) & 0x7FFFFFFF;
            ys[i] = (seed & 0x7FFFFF) | (((i %% 17) + 110) << 23);
        }
        int check = 0;
        for (int i = 0; i < n; i++) {
            int p = emMul(xs[i], ys[i]);
            int s = emAdd(p, xs[i]);
            check = (check + (s >>> 16)) & 0xFFFFFF;
        }
        Sys.printInt(check);
        return check;
    }
}
"""


def _emfloat(size):
    n = {"small": 250, "default": 600, "large": 1400}[size]
    return _EMFLOAT % {"n": n}


register(Workload(
    name="EmFloatPnt",
    category=INTEGER,
    description="Software floating-point emulation (jBYTEmark)",
    source_fn=_emfloat,
    paper={"note": "wait-used state from load imbalance: iterations "
                   "have variable-length normalization loops"},
))

# ---------------------------------------------------------------------------
# Huffman — compression (histogram + encode)
# ---------------------------------------------------------------------------

_HUFFMAN = """
class Main {
    static int main() {
        int n = %(n)d;
        int[] data = new int[n];
        int seed = 555;
        for (int i = 0; i < n; i++) {
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            int r = (seed >> 8) %% 100;
            // skewed distribution over 32 symbols
            if (r < 40) { data[i] = r %% 4; }
            else { if (r < 75) { data[i] = 4 + r %% 8; }
                   else { data[i] = 12 + r %% 20; } }
        }
        int[] hist = new int[32];
        for (int i = 0; i < n; i++) {
            hist[data[i]] = hist[data[i]] + 1;
        }
        // Assign code lengths greedily by frequency rank (serial, small).
        int[] lenOf = new int[32];
        for (int s = 0; s < 32; s++) {
            int rank = 0;
            for (int t = 0; t < 32; t++) {
                if (hist[t] > hist[s] || (hist[t] == hist[s] && t < s)) {
                    rank++;
                }
            }
            int ln = 2;
            int r = rank;
            while (r > 0) { r = r >> 1; ln++; }
            lenOf[s] = ln;
        }
        // Encode: total output bits plus a rolling checksum that makes
        // the bit position a carried dependency (sub-word packing).
        int bits = 0;
        int check = 0;
        for (int i = 0; i < n; i++) {
            int ln = lenOf[data[i]];
            check = (check + ((bits & 7) << 4) + ln) & 0xFFFFFF;
            bits += ln;
        }
        Sys.printInt(bits);
        Sys.printInt(check);
        return bits;
    }
}
"""

_HUFFMAN_MANUAL = """
class Main {
    // Manual transform (paper Table 4): merge independent streams —
    // encode fixed-size blocks with block-local bit positions so the
    // sub-word packing dependency disappears.
    static int main() {
        int n = %(n)d;
        int[] data = new int[n];
        int seed = 555;
        for (int i = 0; i < n; i++) {
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            int r = (seed >> 8) %% 100;
            if (r < 40) { data[i] = r %% 4; }
            else { if (r < 75) { data[i] = 4 + r %% 8; }
                   else { data[i] = 12 + r %% 20; } }
        }
        int[] hist = new int[32];
        for (int i = 0; i < n; i++) {
            hist[data[i]] = hist[data[i]] + 1;
        }
        int[] lenOf = new int[32];
        for (int s = 0; s < 32; s++) {
            int rank = 0;
            for (int t = 0; t < 32; t++) {
                if (hist[t] > hist[s] || (hist[t] == hist[s] && t < s)) {
                    rank++;
                }
            }
            int ln = 2;
            int r = rank;
            while (r > 0) { r = r >> 1; ln++; }
            lenOf[s] = ln;
        }
        int block = 64;
        int bits = 0;
        int check = 0;
        for (int b = 0; b < n; b += block) {
            int localBits = 0;
            int localCheck = 0;
            int end = Math.imin(b + block, n);
            for (int i = b; i < end; i++) {
                int ln = lenOf[data[i]];
                localCheck = (localCheck + ((localBits & 7) << 4) + ln)
                             & 0xFFFFFF;
                localBits += ln;
            }
            bits += localBits;
            check = (check + localCheck) & 0xFFFFFF;
        }
        Sys.printInt(bits);
        Sys.printInt(check);
        return bits;
    }
}
"""


def _huffman(size):
    n = {"small": 1200, "default": 3000, "large": 7000}[size]
    return _HUFFMAN % {"n": n}


def _huffman_manual(size):
    n = {"small": 1200, "default": 3000, "large": 7000}[size]
    return _HUFFMAN_MANUAL % {"n": n}


register(Workload(
    name="Huffman",
    category=INTEGER,
    description="Huffman compression (jBYTEmark)",
    source_fn=_huffman,
    manual_variant_fn=_huffman_manual,
    manual_notes={"difficulty": "Med", "compiler_optimizable": False,
                  "lines": 22,
                  "operation": "Merge independent streams to prevent "
                               "sub-word dependencies during compression"},
    paper={"note": "significant run-violated state; violations are truly "
                   "dynamic; manual stream merging exposes parallelism"},
))

# ---------------------------------------------------------------------------
# IDEA — block cipher encryption (fully parallel blocks)
# ---------------------------------------------------------------------------

_IDEA = """
class Main {
    static int mulMod(int a, int b) {
        // IDEA multiplication modulo 65537 (0 means 65536).
        if (a == 0) { return (65537 - b) & 0xFFFF; }
        if (b == 0) { return (65537 - a) & 0xFFFF; }
        int p = a * b;
        int lo = p & 0xFFFF;
        int hi = p >>> 16;
        if (lo >= hi) { return (lo - hi) & 0xFFFF; }
        return (lo - hi + 65537) & 0xFFFF;
    }
    static int main() {
        int blocks = %(blocks)d;
        int[] x0 = new int[blocks];
        int[] x1 = new int[blocks];
        int[] x2 = new int[blocks];
        int[] x3 = new int[blocks];
        int seed = 90210;
        for (int i = 0; i < blocks; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            x0[i] = seed & 0xFFFF;
            x1[i] = (seed >> 8) & 0xFFFF;
            x2[i] = (seed >> 4) & 0xFFFF;
            x3[i] = (seed >> 12) & 0xFFFF;
        }
        int[] key = new int[52];
        for (int k = 0; k < 52; k++) { key[k] = (k * 2654 + 101) & 0xFFFF; }
        int check = 0;
        for (int i = 0; i < blocks; i++) {
            int a = x0[i];
            int b = x1[i];
            int c = x2[i];
            int d = x3[i];
            for (int r = 0; r < 8; r++) {
                int k = r * 6;
                a = mulMod(a, key[k]);
                b = (b + key[k + 1]) & 0xFFFF;
                c = (c + key[k + 2]) & 0xFFFF;
                d = mulMod(d, key[k + 3]);
                int e = a ^ c;
                int f = b ^ d;
                e = mulMod(e, key[k + 4]);
                f = (f + e) & 0xFFFF;
                f = mulMod(f, key[k + 5]);
                e = (e + f) & 0xFFFF;
                a = a ^ f;
                c = c ^ f;
                b = b ^ e;
                d = d ^ e;
            }
            x0[i] = a;
            x1[i] = b;
            x2[i] = c;
            x3[i] = d;
            check = (check + a + b + c + d) & 0xFFFFFF;
        }
        Sys.printInt(check);
        return check;
    }
}
"""


def _idea(size):
    blocks = {"small": 60, "default": 150, "large": 400}[size]
    return _IDEA % {"blocks": blocks}


register(Workload(
    name="IDEA",
    category=INTEGER,
    description="IDEA block-cipher encryption (jBYTEmark)",
    source_fn=_idea,
    paper={"note": "independent blocks parallelize cleanly"},
))

# ---------------------------------------------------------------------------
# jess — expert system (rule matching over facts)
# ---------------------------------------------------------------------------

_JESS = """
class Activation {
    int fact;
    int strength;
    Activation(int f, int s) { fact = f; strength = s; }
}
class Agenda {
    int cursor;
    int capacity;
    synchronized void push(int code) { cursor = (cursor * 5 + code) & 0xFFFF; }
    synchronized int room() { return capacity; }
    synchronized int state() { return cursor; }
}
class Main {
    static int main() {
        int nfacts = %(nfacts)d;
        int nrules = %(nrules)d;
        int[][] facts = new int[nfacts][3];
        int seed = 2718;
        for (int i = 0; i < nfacts; i++) {
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            facts[i][0] = seed %% 16;
            facts[i][1] = (seed >> 5) %% 64;
            facts[i][2] = (seed >> 11) %% 64;
        }
        int[][] rules = new int[nrules][3];
        for (int r = 0; r < nrules; r++) {
            rules[r][0] = r %% 16;
            rules[r][1] = (r * 13) %% 64;
            rules[r][2] = (r * 7 + 3) %% 8;
        }
        int fired = 0;
        Agenda agenda = new Agenda();
        agenda.capacity = 3;
        // Match phase: each fact tested against every rule (parallel
        // across facts).
        for (int i = 0; i < nfacts; i++) {
            int hits = 0;
            for (int r = 0; r < nrules; r++) {
                if (facts[i][0] == rules[r][0]
                        && (facts[i][1] & rules[r][2]) == rules[r][2]) {
                    hits++;
                }
            }
            // consult the synchronized agenda every fact (paper
            // Table 3 column "JVM - Java lock"); rare matches allocate
            // an activation record (column "JVM - Allocation") and push
            if (hits > agenda.room()) {
                Activation act = new Activation(i, hits);
                agenda.push(act.fact + act.strength);
            }
            fired += hits;
        }
        // Agenda resolution: serial pass.
        int state = agenda.state();
        for (int k = 0; k < nfacts; k++) {
            state = (state * 3 + facts[k][2]) & 0xFFFF;
        }
        Sys.printInt(fired);
        Sys.printInt(state);
        return fired;
    }
}
"""


def _jess(size):
    params = {"small": (120, 24), "default": (250, 40),
              "large": (600, 64)}[size]
    return _JESS % {"nfacts": params[0], "nrules": params[1]}


register(Workload(
    name="jess",
    category=INTEGER,
    description="Expert-system rule matching (SPECjvm98)",
    source_fn=_jess,
    paper={"note": "significant serial execution not covered by STLs"},
))

# ---------------------------------------------------------------------------
# jLex — lexical analyzer (DFA scan per line)
# ---------------------------------------------------------------------------

_JLEX = """
class Main {
    static int main() {
        int nlines = %(nlines)d;
        int linelen = %(linelen)d;
        int[] text = new int[nlines * linelen];
        int seed = 123;
        for (int i = 0; i < nlines * linelen; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            text[i] = (seed >> 7) %% 8;
        }
        // A small DFA over an 8-symbol alphabet, 16 states.
        int[][] trans = new int[16][8];
        for (int s = 0; s < 16; s++) {
            for (int c = 0; c < 8; c++) {
                trans[s][c] = (s * 5 + c * 3 + 1) %% 16;
            }
        }
        int tokens = 0;
        int check = 0;
        // Outer loop over lines (parallel); inner DFA scan is serial.
        for (int ln = 0; ln < nlines; ln++) {
            int state = 0;
            int lineTokens = 0;
            for (int k = 0; k < linelen; k++) {
                state = trans[state][text[ln * linelen + k]];
                if (state == 7) { lineTokens++; state = 0; }
            }
            tokens += lineTokens;
            check = (check + state + lineTokens * 17) & 0xFFFFFF;
        }
        Sys.printInt(tokens);
        Sys.printInt(check);
        return tokens;
    }
}
"""


def _jlex(size):
    params = {"small": (40, 30), "default": (90, 40),
              "large": (200, 60)}[size]
    return _JLEX % {"nlines": params[0], "linelen": params[1]}


register(Workload(
    name="jLex",
    category=INTEGER,
    description="Lexical analyzer generator's DFA scanner",
    source_fn=_jlex,
    paper={"note": "wait-used state from load imbalance between lines"},
))

# ---------------------------------------------------------------------------
# MipsSimulator — CPU simulator (serial interpreter loop)
# ---------------------------------------------------------------------------

_MIPSSIM = """
class Main {
    static int main() {
        int steps = %(steps)d;
        // A tiny MIPS-like machine: 16 registers, 64 words of memory,
        // a fixed 32-instruction program (encoded op/rd/rs/rt).
        int[] regs = new int[16];
        int[] mem = new int[64];
        int[] prog = new int[32];
        for (int i = 0; i < 32; i++) {
            int op = i %% 5;
            int rd = (i * 3 + 1) %% 16;
            int rs = (i * 5 + 2) %% 16;
            int rt = (i * 7 + 3) %% 16;
            prog[i] = (op << 12) | (rd << 8) | (rs << 4) | rt;
        }
        for (int i = 0; i < 64; i++) { mem[i] = i * 3 + 1; }
        int pc = 0;
        int check = 0;
        for (int s = 0; s < steps; s++) {
            int instr = prog[pc];
            int op = instr >> 12;
            int rd = (instr >> 8) & 15;
            int rs = (instr >> 4) & 15;
            int rt = instr & 15;
            if (op == 0) { regs[rd] = (regs[rs] + regs[rt]) & 0xFFFF; }
            else { if (op == 1) { regs[rd] = regs[rs] ^ regs[rt]; }
            else { if (op == 2) { regs[rd] = mem[(regs[rs] + rt) & 63]; }
            else { if (op == 3) { mem[(regs[rs] + rt) & 63] =
                                      regs[rd] & 0xFFFF; }
            else { regs[rd] = (regs[rs] << 1) | (rt & 1); } } } }
            pc = pc + 1;
            if (pc >= 32) { pc = 0; check = (check + regs[7]) & 0xFFFFFF; }
        }
        Sys.printInt(check);
        Sys.printInt(regs[3]);
        return check;
    }
}
"""

_MIPSSIM_MANUAL = """
class Main {
    // Manual transform (paper Table 4): partition the simulation into
    // independent streams with private register/memory state so the
    // dependencies that forward values between simulated instructions
    // stay within one speculative thread.
    static int main() {
        int steps = %(steps)d;
        int streams = 4;
        int per = steps / streams;
        int[] prog = new int[32];
        for (int i = 0; i < 32; i++) {
            int op = i %% 5;
            int rd = (i * 3 + 1) %% 16;
            int rs = (i * 5 + 2) %% 16;
            int rt = (i * 7 + 3) %% 16;
            prog[i] = (op << 12) | (rd << 8) | (rs << 4) | rt;
        }
        int check = 0;
        int r3sum = 0;
        for (int stream = 0; stream < streams; stream++) {
            int[] regs = new int[16];
            int[] mem = new int[64];
            for (int i = 0; i < 64; i++) { mem[i] = i * 3 + 1 + stream; }
            int pc = 0;
            int local = 0;
            for (int st = 0; st < per; st++) {
                int instr = prog[pc];
                int op = instr >> 12;
                int rd = (instr >> 8) & 15;
                int rs = (instr >> 4) & 15;
                int rt = instr & 15;
                if (op == 0) { regs[rd] = (regs[rs] + regs[rt]) & 0xFFFF; }
                else { if (op == 1) { regs[rd] = regs[rs] ^ regs[rt]; }
                else { if (op == 2) { regs[rd] = mem[(regs[rs] + rt) & 63]; }
                else { if (op == 3) { mem[(regs[rs] + rt) & 63] =
                                          regs[rd] & 0xFFFF; }
                else { regs[rd] = (regs[rs] << 1) | (rt & 1); } } } }
                pc = pc + 1;
                if (pc >= 32) { pc = 0; local = (local + regs[7]) & 0xFFFFFF; }
            }
            check = (check + local) & 0xFFFFFF;
            r3sum = (r3sum + regs[3]) & 0xFFFF;
        }
        Sys.printInt(check);
        Sys.printInt(r3sum);
        return check;
    }
}
"""


def _mipssim(size):
    steps = {"small": 1600, "default": 4000, "large": 9600}[size]
    return _MIPSSIM % {"steps": steps}


def _mipssim_manual(size):
    steps = {"small": 1600, "default": 4000, "large": 9600}[size]
    return _MIPSSIM_MANUAL % {"steps": steps}


register(Workload(
    name="MipsSimulator",
    category=INTEGER,
    description="MIPS CPU simulator (interpreter loop)",
    source_fn=_mipssim,
    manual_variant_fn=_mipssim_manual,
    manual_notes={"difficulty": "Med", "compiler_optimizable": False,
                  "lines": 70,
                  "operation": "Partition simulation into independent "
                               "streams so load-delay-slot forwarding stays "
                               "within one thread"},
    paper={"note": "wait-used from load imbalance; interpreter state is "
                   "heavily loop-carried"},
))

# ---------------------------------------------------------------------------
# monteCarlo — Monte Carlo simulation (sync-lock showcase)
# ---------------------------------------------------------------------------

_MONTECARLO = """
class Main {
    static int main() {
        int samples = %(samples)d;
        int seed = 20031984;
        int inside = 0;
        int check = 0;
        for (int s = 0; s < samples; s++) {
            // First random draw, a little path setup, then the second
            // draw: the carried seed update lands mid-iteration, where
            // only a thread synchronizing lock avoids violations.
            int sx = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            int bucket = (sx >> 8) %% 977;
            bucket = (bucket * bucket + s) %% 751;
            seed = (sx * 69069 + bucket) & 0x7FFFFFFF;
            // pricing-style compute on the sample (the longer tail)
            float x = (float)(sx %% 10000) * 0.0001;
            float v = 1.0;
            for (int k = 0; k < 6; k++) {
                v = v * (1.0 + x * 0.05) - x * 0.01;
            }
            if (v > 1.2) { inside++; }
            check = (check + (sx >> 16) + bucket) & 0xFFFFFF;
        }
        Sys.printInt(inside);
        Sys.printInt(check);
        return inside;
    }
}
"""

_MONTECARLO_MANUAL = """
class Main {
    // Manual transform (paper Table 4): schedule the loop-carried
    // dependency — generate the random sequence in its own cheap
    // (serial) loop, then run the heavy pricing loop over independent
    // precomputed samples.
    static int main() {
        int samples = %(samples)d;
        int[] seeds = new int[samples];
        int seed = 20031984;
        for (int s = 0; s < samples; s++) {
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            seeds[s] = seed;
        }
        int inside = 0;
        int check = 0;
        for (int s = 0; s < samples; s++) {
            int sx = seeds[s];
            float x = (float)(sx %% 10000) * 0.0001;
            float v = 1.0;
            for (int k = 0; k < 6; k++) {
                v = v * (1.0 + x * 0.05) - x * 0.01;
            }
            if (v > 1.2) { inside++; }
            check = (check + (sx >> 16)) & 0xFFFFFF;
        }
        Sys.printInt(inside);
        Sys.printInt(check);
        return inside;
    }
}
"""


def _montecarlo(size):
    samples = {"small": 400, "default": 1000, "large": 2500}[size]
    return _MONTECARLO % {"samples": samples}


def _montecarlo_manual(size):
    samples = {"small": 400, "default": 1000, "large": 2500}[size]
    return _MONTECARLO_MANUAL % {"samples": samples}


register(Workload(
    name="monteCarlo",
    category=INTEGER,
    description="Monte Carlo simulation (Java Grande)",
    source_fn=_montecarlo,
    manual_variant_fn=_montecarlo_manual,
    manual_notes={"difficulty": "Med", "compiler_optimizable": False,
                  "lines": 39,
                  "operation": "Schedule loop carried dependency"},
    paper={"note": "thread synchronizing lock prevents violations on the "
                   "carried random seed", "key_opt": "sync_locks"},
))

# ---------------------------------------------------------------------------
# NumHeapSort — heap sort (serial sift at heap top; manual transform)
# ---------------------------------------------------------------------------

_HEAPSORT = """
class Main {
    static int[] heap;
    static void sift(int root, int limit) {
        int top = heap[root];
        int parent = root;
        int child = parent * 2 + 1;
        while (child < limit) {
            if (child + 1 < limit && heap[child + 1] > heap[child]) {
                child++;
            }
            if (heap[child] <= top) { child = limit; }
            else {
                heap[parent] = heap[child];
                parent = child;
                heap[parent] = top;
                child = parent * 2 + 1;
            }
        }
    }
    static int main() {
        int n = %(n)d;
        heap = new int[n];
        int seed = 1999;
        for (int i = 0; i < n; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            heap[i] = seed %% 10000;
        }
        for (int root = n / 2 - 1; root >= 0; root--) {
            sift(root, n);
        }
        for (int limit = n - 1; limit > 0; limit--) {
            int t = heap[0];
            heap[0] = heap[limit];
            heap[limit] = t;
            sift(0, limit);
        }
        int check = 0;
        int sorted = 1;
        for (int i = 1; i < n; i++) {
            if (heap[i - 1] > heap[i]) { sorted = 0; }
            check = (check + heap[i] * i) & 0xFFFFFF;
        }
        Sys.printInt(sorted);
        Sys.printInt(check);
        return check;
    }
}
"""

_HEAPSORT_MANUAL = """
class Main {
    // Manual transform (paper Table 4): remove the loop-carried
    // dependency at the top of the sorted heap — sort independent
    // segments (parallel) and merge once (serial, cheap).
    static int[] heap;
    static void sift(int base, int root, int limit) {
        int top = heap[base + root];
        int parent = root;
        int child = parent * 2 + 1;
        while (child < limit) {
            if (child + 1 < limit
                    && heap[base + child + 1] > heap[base + child]) {
                child++;
            }
            if (heap[base + child] <= top) { child = limit; }
            else {
                heap[base + parent] = heap[base + child];
                parent = child;
                heap[base + parent] = top;
                child = parent * 2 + 1;
            }
        }
    }
    static void sortSegment(int base, int len) {
        for (int root = len / 2 - 1; root >= 0; root--) {
            sift(base, root, len);
        }
        for (int limit = len - 1; limit > 0; limit--) {
            int t = heap[base];
            heap[base] = heap[base + limit];
            heap[base + limit] = t;
            sift(base, 0, limit);
        }
    }
    static int main() {
        int n = %(n)d;
        int seg = %(seg)d;
        heap = new int[n];
        int seed = 1999;
        for (int i = 0; i < n; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            heap[i] = seed %% 10000;
        }
        for (int b = 0; b < n; b += seg) {
            sortSegment(b, Math.imin(seg, n - b));
        }
        // k-way merge checksum (serial but light).
        int check = 0;
        int segments = (n + seg - 1) / seg;
        int[] cursor = new int[segments];
        for (int out = 0; out < n; out++) {
            int best = -1;
            int bestVal = 0x7FFFFFFF;
            for (int s = 0; s < segments; s++) {
                int idx = s * seg + cursor[s];
                int limit = Math.imin(seg, n - s * seg);
                if (cursor[s] < limit && heap[idx] < bestVal) {
                    bestVal = heap[idx];
                    best = s;
                }
            }
            cursor[best] = cursor[best] + 1;
            check = (check + bestVal * (out + 1)) & 0xFFFFFF;
        }
        Sys.printInt(1);
        Sys.printInt(check);
        return check;
    }
}
"""


def _heapsort(size):
    n = {"small": 400, "default": 900, "large": 2200}[size]
    return _HEAPSORT % {"n": n}


def _heapsort_manual(size):
    n = {"small": 400, "default": 900, "large": 2200}[size]
    return _HEAPSORT_MANUAL % {"n": n, "seg": max(64, (n + 3) // 4)}


register(Workload(
    name="NumHeapSort",
    category=INTEGER,
    description="Heap sort (jBYTEmark)",
    source_fn=_heapsort,
    manual_variant_fn=_heapsort_manual,
    manual_notes={"difficulty": "Low", "compiler_optimizable": False,
                  "lines": 7,
                  "operation": "Remove loop carried dependency at top of "
                               "sorted heap"},
    paper={"note": "serializing dependency at the heap top; manual "
                   "segmenting exposes parallelism"},
))

# ---------------------------------------------------------------------------
# raytrace — integer-heavy ray tracer (parallel pixels, fits buffers)
# ---------------------------------------------------------------------------

_RAYTRACE = """
class Ray {
    int dx; int dy; int dz;
    Ray(int x, int y, int z) { dx = x; dy = y; dz = z; }
}
class Main {
    static int main() {
        int width = %(w)d;
        int height = %(h)d;
        // Three spheres, fixed-point arithmetic (x,y,z,r scaled by 256).
        int[] sx = new int[3];
        int[] sy = new int[3];
        int[] sz = new int[3];
        int[] sr = new int[3];
        sx[0] = 0;    sy[0] = 0;   sz[0] = 2560; sr[0] = 1024;
        sx[1] = 1280; sy[1] = 512; sz[1] = 3584; sr[1] = 768;
        sx[2] = -1024; sy[2] = -256; sz[2] = 2048; sr[2] = 512;
        int check = 0;
        for (int p = 0; p < width * height; p++) {
            int px = p %% width;
            int py = p / width;
            Ray ray = new Ray((px - width / 2) * 16,
                              (py - height / 2) * 16, 256);
            int dx = ray.dx;
            int dy = ray.dy;
            int dz = ray.dz;
            int color = 16;
            for (int s = 0; s < 3; s++) {
                // ray-sphere: project center onto ray (fixed point)
                int t = (sx[s] * dx + sy[s] * dy + sz[s] * dz) >> 8;
                if (t > 0) {
                    int qx = (dx * t >> 8) - sx[s];
                    int qy = (dy * t >> 8) - sy[s];
                    int qz = (dz * t >> 8) - sz[s];
                    int d2 = (qx * qx + qy * qy + qz * qz) >> 8;
                    int r2 = (sr[s] * sr[s]) >> 8;
                    if (d2 < r2) {
                        color = color + 64 + (r2 - d2) / (r2 / 16 + 1);
                    }
                }
            }
            check = (check + (color & 255) * (p %% 31 + 1)) & 0xFFFFFF;
        }
        Sys.printInt(check);
        return check;
    }
}
"""


def _raytrace(size):
    params = {"small": (24, 18), "default": (40, 30),
              "large": (64, 48)}[size]
    return _RAYTRACE % {"w": params[0], "h": params[1]}


register(Workload(
    name="raytrace",
    category=INTEGER,
    description="Ray tracer with per-pixel parallelism",
    source_fn=_raytrace,
    paper={"note": "the variant whose parallel loop fits within the "
                   "speculative buffers (paper §6.1 contrasts two "
                   "raytracers)"},
))
