"""Multimedia benchmarks (paper Table 3, lower block).

decJpeg, encJpeg, h263dec, mpegVideo, mp3 — block-structured media
codecs where the paper reports 2-3x speedups on 4 CPUs.
"""

from .registry import MULTIMEDIA, Workload, register

# Shared 8x8 DCT-ish kernels expressed over flattened block arrays.

# ---------------------------------------------------------------------------
# decJpeg — dequantize + inverse DCT per 8x8 block
# ---------------------------------------------------------------------------

_DECJPEG = """
class Main {
    static int main() {
        int blocks = %(blocks)d;
        int[] coeff = new int[blocks * 64];
        int[] quant = new int[64];
        int[] pixels = new int[blocks * 64];
        int seed = 60;
        for (int k = 0; k < 64; k++) { quant[k] = 2 + (k >> 3); }
        for (int i = 0; i < blocks * 64; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            coeff[i] = (seed %% 64) - 32;
        }
        int check = 0;
        for (int b = 0; b < blocks; b++) {
            int base = b * 64;
            // dequantize
            for (int k = 0; k < 64; k++) {
                coeff[base + k] = coeff[base + k] * quant[k];
            }
            // separable integer IDCT approximation: rows then columns
            for (int r = 0; r < 8; r++) {
                int o = base + r * 8;
                for (int c = 0; c < 8; c++) {
                    int acc = 0;
                    for (int k = 0; k < 8; k++) {
                        int basis = ((c * 2 + 1) * k) %% 32;
                        int w = 16 - basis;
                        acc += coeff[o + k] * w;
                    }
                    pixels[o + c] = acc >> 4;
                }
            }
            for (int c = 0; c < 8; c++) {
                for (int r = 0; r < 8; r++) {
                    int acc = 0;
                    for (int k = 0; k < 8; k++) {
                        int basis = ((r * 2 + 1) * k) %% 32;
                        int w = 16 - basis;
                        acc += pixels[base + k * 8 + c] * w;
                    }
                    int px = (acc >> 8) + 128;
                    px = Math.imax(0, Math.imin(255, px));
                    check = (check + px) & 0xFFFFFF;
                }
            }
        }
        Sys.printInt(check);
        return check;
    }
}
"""


def _decjpeg(size):
    blocks = {"small": 8, "default": 18, "large": 40}[size]
    return _DECJPEG % {"blocks": blocks}


register(Workload(
    name="decJpeg",
    category=MULTIMEDIA,
    description="JPEG-style decode: dequantize + inverse DCT per block",
    source_fn=_decjpeg,
    paper={"note": "independent 8x8 blocks parallelize"},
))

# ---------------------------------------------------------------------------
# encJpeg — forward DCT + quantize per 8x8 block
# ---------------------------------------------------------------------------

_ENCJPEG = """
class Main {
    static int main() {
        int blocks = %(blocks)d;
        int[] pixels = new int[blocks * 64];
        int[] quant = new int[64];
        int seed = 61;
        for (int k = 0; k < 64; k++) { quant[k] = 2 + (k >> 3); }
        for (int i = 0; i < blocks * 64; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            pixels[i] = seed %% 256;
        }
        int check = 0;
        int[] tmp = new int[64];
        for (int b = 0; b < blocks; b++) {
            int base = b * 64;
            for (int r = 0; r < 8; r++) {
                for (int c = 0; c < 8; c++) {
                    int acc = 0;
                    for (int k = 0; k < 8; k++) {
                        int basis = ((k * 2 + 1) * c) %% 32;
                        int w = 16 - basis;
                        acc += (pixels[base + r * 8 + k] - 128) * w;
                    }
                    tmp[r * 8 + c] = acc >> 4;
                }
            }
            for (int c = 0; c < 8; c++) {
                for (int r = 0; r < 8; r++) {
                    int acc = 0;
                    for (int k = 0; k < 8; k++) {
                        int basis = ((k * 2 + 1) * r) %% 32;
                        int w = 16 - basis;
                        acc += tmp[k * 8 + c] * w;
                    }
                    int q = (acc >> 8) / quant[r * 8 + c];
                    check = (check + q * q) & 0xFFFFFF;
                }
            }
        }
        Sys.printInt(check);
        return check;
    }
}
"""


def _encjpeg(size):
    blocks = {"small": 8, "default": 18, "large": 40}[size]
    return _ENCJPEG % {"blocks": blocks}


register(Workload(
    name="encJpeg",
    category=MULTIMEDIA,
    description="JPEG-style encode: forward DCT + quantize per block",
    source_fn=_encjpeg,
    paper={"note": "independent 8x8 blocks parallelize; the shared tmp "
                   "block buffer creates store-buffer pressure"},
))

# ---------------------------------------------------------------------------
# h263dec — motion compensation over macroblocks
# ---------------------------------------------------------------------------

_H263 = """
class Main {
    static int main() {
        int mbs = %(mbs)d;
        int w = 64;
        int[] ref = new int[w * 48];
        int[] cur = new int[w * 48];
        int[] mvx = new int[mbs];
        int[] mvy = new int[mbs];
        int[] residual = new int[mbs * 64];
        int seed = 2003;
        for (int i = 0; i < w * 48; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            ref[i] = seed %% 256;
        }
        for (int m = 0; m < mbs; m++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            mvx[m] = (seed %% 5) - 2;
            mvy[m] = ((seed >> 4) %% 5) - 2;
        }
        for (int i = 0; i < mbs * 64; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            residual[i] = (seed %% 17) - 8;
        }
        int check = 0;
        int mbPerRow = w / 8;
        for (int m = 0; m < mbs; m++) {
            int bx = (m %% mbPerRow) * 8;
            int by = (m / mbPerRow) * 8;
            for (int r = 0; r < 8; r++) {
                for (int c = 0; c < 8; c++) {
                    int sy = by + r + mvy[m];
                    int sx = bx + c + mvx[m];
                    sy = Math.imax(0, Math.imin(47, sy));
                    sx = Math.imax(0, Math.imin(w - 1, sx));
                    int pred = ref[sy * w + sx];
                    int px = pred + residual[m * 64 + r * 8 + c];
                    px = Math.imax(0, Math.imin(255, px));
                    cur[(by + r) * w + bx + c] = px;
                }
            }
        }
        for (int i = 0; i < w * 48; i++) {
            check = (check + cur[i] * (1 + (i & 7))) & 0xFFFFFF;
        }
        Sys.printInt(check);
        return check;
    }
}
"""


def _h263(size):
    mbs = {"small": 12, "default": 24, "large": 48}[size]
    return _H263 % {"mbs": mbs}


register(Workload(
    name="h263dec",
    category=MULTIMEDIA,
    description="H.263-style decode: motion compensation per macroblock",
    source_fn=_h263,
    paper={"note": "macroblocks are independent"},
))

# ---------------------------------------------------------------------------
# mpegVideo — block decode with a serial bitstream cursor
# ---------------------------------------------------------------------------

_MPEG = """
class Main {
    static int main() {
        int blocks = %(blocks)d;
        int[] stream = new int[blocks * 70];
        int[] out = new int[blocks * 64];
        int seed = 1111;
        for (int i = 0; i < blocks * 70; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            stream[i] = seed %% 128;
        }
        int cursor = 0;
        int check = 0;
        for (int b = 0; b < blocks; b++) {
            // Variable-length "entropy decode": the bitstream cursor is
            // a true loop-carried dependency (paper: mpegVideo shows
            // run-violated state).
            int len = 60 + (stream[cursor] %% 10);
            int start = cursor;
            cursor = cursor + len;
            if (cursor > blocks * 70 - 70) { cursor = 0; }
            // Block reconstruction from the decoded run (parallel part).
            for (int k = 0; k < 64; k++) {
                int v = stream[(start + k) %% (blocks * 70)];
                int acc = 0;
                for (int t = 0; t < 4; t++) {
                    acc += (v >> t) & 15;
                }
                out[b * 64 + k] = acc;
            }
        }
        for (int i = 0; i < blocks * 64; i++) {
            check = (check + out[i] * (1 + (i & 3))) & 0xFFFFFF;
        }
        Sys.printInt(check);
        return check;
    }
}
"""


def _mpeg(size):
    blocks = {"small": 16, "default": 36, "large": 80}[size]
    return _MPEG % {"blocks": blocks}


register(Workload(
    name="mpegVideo",
    category=MULTIMEDIA,
    description="MPEG-style decode: serial bitstream cursor + block "
                "reconstruction",
    source_fn=_mpeg,
    paper={"note": "significant run-violated state from the dynamic "
                   "bitstream dependency"},
))

# ---------------------------------------------------------------------------
# mp3 — subband synthesis with a rare inner loop (multilevel showcase)
# ---------------------------------------------------------------------------

_MP3 = """
class Main {
    static int main() {
        int frames = %(frames)d;
        int subbands = 16;
        float[] window = new float[128];
        float[] samples = new float[frames * subbands];
        float[] scales = new float[(frames / 16 + 2) * 64];
        for (int i = 0; i < 128; i++) {
            window[i] = Math.sin((float)i * 0.049);
        }
        int seed = 303;
        for (int i = 0; i < frames * subbands; i++) {
            seed = (seed * 69069 + 1) & 0x7FFFFFFF;
            samples[i] = (float)(seed %% 2000 - 1000) * 0.001;
        }
        float check = 0.0;
        // Outer loop over frames (the selected STL).  Every 16th frame
        // runs a heavyweight scale-factor recomputation whose writes
        // are frame-group private: pure load imbalance, the multilevel
        // STL case of paper Fig. 7.
        for (int f = 0; f < frames; f++) {
            float acc = 0.0;
            int group = f / 16;
            int prev = Math.imax(0, group - 1) * 64;
            for (int s = 0; s < subbands; s++) {
                float v = samples[f * subbands + s];
                acc = acc + v * window[(f + s * 8) %% 128]
                      + scales[prev + s] * 0.001;
            }
            if ((f & 15) == 0) {
                // rare inner loop: recompute this group's scale factors
                // (disjoint writes; parallel inside)
                int base = group * 64;
                for (int i = 0; i < 64; i++) {
                    float w = 0.0;
                    for (int k = 0; k < 8; k++) {
                        w = w + samples[(f * subbands + i + k)
                                        %% (frames * subbands)] * 0.01;
                    }
                    scales[base + i] = w;
                }
            }
            check = check + acc;
        }
        // Serial section: bit reservoir bookkeeping (paper: mp3 has a
        // significant serial fraction).
        int reservoir = 0;
        for (int f = 0; f < frames; f++) {
            reservoir = (reservoir * 3 + f) & 0xFFFF;
        }
        Sys.printFloat(check);
        Sys.printInt(reservoir);
        return reservoir;
    }
}
"""


def _mp3(size):
    frames = {"small": 100, "default": 240, "large": 560}[size]
    return _MP3 % {"frames": frames}


register(Workload(
    name="mp3",
    category=MULTIMEDIA,
    description="MP3-style subband synthesis with rare re-windowing",
    source_fn=_mp3,
    paper={"note": "multilevel STL decompositions improve mp3; "
                   "significant serial sections limit total speedup",
           "key_opt": "multilevel"},
))
