"""Retargetability (paper §1): re-run the same program on different
simulated CMPs — more CPUs, bigger/smaller speculative buffers, slower
handlers — and watch the dynamically chosen decompositions adapt.

    python examples/custom_hardware.py
"""

from repro import HydraConfig, Jrpm, SpeculationOverheads

SOURCE = """
class Main {
    static int main() {
        int n = 36;
        float[][] a = new float[n][n];
        float[][] b = new float[n][n];
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) {
                a[i][j] = (float)((i * 7 + j * 3) % 50) * 0.1;
            }
        }
        // Jacobi-style smoothing sweeps over the grid.
        for (int pass = 0; pass < 3; pass++) {
            for (int i = 1; i < n - 1; i++) {
                for (int j = 1; j < n - 1; j++) {
                    b[i][j] = 0.25 * (a[i-1][j] + a[i+1][j]
                                      + a[i][j-1] + a[i][j+1]);
                }
            }
            for (int i = 1; i < n - 1; i++) {
                for (int j = 1; j < n - 1; j++) {
                    a[i][j] = b[i][j];
                }
            }
        }
        float check = 0.0;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { check = check + a[i][j]; }
        }
        Sys.printFloat(check);
        return (int) check;
    }
}
"""

CONFIGS = [
    ("2-CPU CMP", HydraConfig(num_cpus=2)),
    ("4-CPU Hydra (paper)", HydraConfig()),
    ("8-CPU future CMP", HydraConfig(num_cpus=8)),
    ("4 CPUs, tiny store buffers",
     HydraConfig(store_buffer_lines=4, load_buffer_lines=32)),
    ("4 CPUs, old (slow) handlers",
     HydraConfig(overheads=SpeculationOverheads.old_handlers())),
]


def main():
    print("=== One program, five machines ===\n")
    print("%-30s %8s %6s %10s %9s"
          % ("configuration", "speedup", "STLs", "violations", "ovf-stalls"))
    baseline_selection = None
    for label, config in CONFIGS:
        report = Jrpm(config=config).run(SOURCE, name="jacobi")
        assert report.outputs_match()
        selection = sorted((p.meta.method_name, p.meta.ordinal)
                           for p in report.plans.values())
        if baseline_selection is None:
            baseline_selection = selection
        marker = "" if selection == baseline_selection else "  *"
        print("%-30s %7.2fx %6d %10d %9d%s"
              % (label, report.tls_speedup, len(report.plans),
                 report.breakdown.violations,
                 report.breakdown.overflow_stalls, marker))
    print("\n(* = a different set of loops was selected for this machine)")


if __name__ == "__main__":
    main()
