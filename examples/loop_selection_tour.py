"""A tour of TEST's loop selection (paper §3).

Profiles a program containing four qualitatively different loops —
embarrassingly parallel, truly serial, reduction-dominated, and a nested
pair — and shows the statistics the comparator banks collected plus the
selector's verdict for each.

    python examples/loop_selection_tour.py
"""

from repro.hydra.config import HydraConfig
from repro.hydra.machine import Machine
from repro.jit.compiler import compile_annotated
from repro.minijava import compile_source
from repro.tracer import Selector, TestProfiler

SOURCE = """
class Main {
    static int main() {
        int n = 600;
        int[] a = new int[n];
        int[] chain = new int[n];

        // (1) embarrassingly parallel
        for (int i = 0; i < n; i++) {
            a[i] = (i * 37 + 11) % 251;
        }

        // (2) truly serial: each element needs the previous one
        chain[0] = 1;
        for (int i = 1; i < n; i++) {
            chain[i] = (chain[i-1] * 3 + a[i]) & 0xFFFF;
        }

        // (3) reduction: parallel after the compiler privatizes 'sum'
        int sum = 0;
        for (int i = 0; i < n; i++) {
            sum += a[i] * 2 + (a[i] >> 3);
        }

        // (4) a loop nest: TEST picks one level to speculate on
        int[][] grid = new int[24][24];
        int t = 0;
        for (int r = 0; r < 24; r++) {
            for (int c = 0; c < 24; c++) {
                grid[r][c] = r * c + a[(r * 24 + c) % n];
                t += grid[r][c] & 7;
            }
        }

        Sys.printInt(chain[n-1] + sum + t);
        return 0;
    }
}
"""


def main():
    config = HydraConfig()
    program = compile_source(SOURCE)

    # Steps 1-2: compile with annotations, run under the TEST profiler.
    annotated = compile_annotated(program, config)
    profiler = TestProfiler(config, annotated.loop_table)
    machine = Machine(annotated, config, profiler=profiler)
    machine.run()

    print("=== TEST profile of every prospective STL ===\n")
    selector = Selector(config, annotated.loop_table)
    header = ("%-6s %-5s %8s %9s %8s %8s %8s %8s"
              % ("loop", "line", "threads", "avg cyc", "arcfreq",
                 "ld-lines", "st-lines", "pred"))
    print(header)
    print("-" * len(header))
    for loop_id in sorted(profiler.stats):
        stats = profiler.stats[loop_id]
        meta = annotated.loop_table[loop_id]
        prediction = selector.predict(stats)
        print("%-6d %-5s %8d %9.1f %8.2f %8.1f %8.1f %7.2fx"
              % (loop_id, meta.line, stats.threads,
                 stats.avg_thread_cycles, stats.arc_frequency,
                 stats.avg_load_lines, stats.avg_store_lines,
                 prediction.speedup))

    # Step 3: selection.
    plans = selector.select(profiler.stats, profiler.dynamic_nesting)
    print("\n=== Selector verdicts ===\n")
    for loop_id in sorted(profiler.stats):
        meta = annotated.loop_table[loop_id]
        stats = profiler.stats[loop_id]
        prediction = selector.predict(stats)
        if loop_id in plans:
            plan = plans[loop_id]
            verdict = "SELECTED (%.2fx predicted)" % prediction.speedup
            if plan.sync:
                verdict += " with a thread synchronizing lock"
            if plan.multilevel_inner:
                verdict += " as a multilevel inner STL"
        elif not selector.eligible(stats, prediction):
            if prediction.speedup <= config.min_predicted_speedup:
                verdict = ("rejected: predicted %.2fx <= %.1fx threshold"
                           % (prediction.speedup,
                              config.min_predicted_speedup))
            elif stats.overflow_frequency > config.max_overflow_frequency:
                verdict = ("rejected: %.0f%% of threads overflow the "
                           "speculative buffers"
                           % (100 * stats.overflow_frequency))
            else:
                verdict = "rejected: too few iterations per entry"
        else:
            verdict = "not chosen: conflicts with a better loop in its nest"
        print("loop %d (line %s): %s" % (loop_id, meta.line, verdict))

    print("\ncarried-local classification of the selected loops:")
    for loop_id, plan in sorted(plans.items()):
        kinds = plan.meta.carried_kinds
        names = ", ".join("r%d=%s" % (reg, info.kind)
                          for reg, info in sorted(kinds.items())) or "none"
        print("  loop %d: %s" % (loop_id, names))


if __name__ == "__main__":
    main()
