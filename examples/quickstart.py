"""Quickstart: dynamically parallelize a sequential MiniJava program.

Runs the complete Jrpm pipeline (paper Figure 1) on a small image-blur
kernel and prints what each stage found.

    python examples/quickstart.py
"""

from repro import Jrpm

SOURCE = """
class Main {
    static int main() {
        int width = 64;
        int height = 24;
        int[] image = new int[width * height];
        int[] blurred = new int[width * height];

        // Fill the image with a deterministic pattern.
        for (int p = 0; p < width * height; p++) {
            image[p] = (p * 2654435761) & 255;
        }

        // 3x1 horizontal blur: every pixel is independent, so this is
        // exactly the kind of loop TLS parallelizes automatically.
        for (int p = 0; p < width * height; p++) {
            int x = p % width;
            int left = x > 0 ? image[p - 1] : image[p];
            int right = x < width - 1 ? image[p + 1] : image[p];
            blurred[p] = (left + 2 * image[p] + right) / 4;
        }

        int checksum = 0;
        for (int p = 0; p < width * height; p++) {
            checksum = (checksum + blurred[p] * (p % 7 + 1)) & 0xFFFFFF;
        }
        Sys.printInt(checksum);
        return checksum;
    }
}
"""


def main():
    jrpm = Jrpm()
    report = jrpm.run(SOURCE, name="blur")

    print("=== Jrpm pipeline on the blur kernel ===\n")
    print("sequential run:   %8.0f cycles" % report.sequential.cycles)
    print("profiled run:     %8.0f cycles  (TEST slowdown %.1f%%)"
          % (report.profiling.cycles,
             (report.profiling_slowdown - 1.0) * 100.0))

    print("\nprospective STLs found by the annotator: %d"
          % len(report.loop_table))
    print("loops selected for speculation: %d" % len(report.plans))
    for plan in report.plans.values():
        meta = plan.meta
        print("  - loop at line %s of %s: predicted %.2fx%s"
              % (meta.line, meta.method_name, plan.prediction.speedup,
                 " (+sync lock)" if plan.sync else ""))

    print("\nspeculative run:  %8.0f cycles" % report.tls.cycles)
    print("TLS speedup:        %.2fx on %d CPUs  (TEST predicted %.2fx)"
          % (report.tls_speedup, report.config.num_cpus,
             report.predicted_speedup))
    print("total speedup incl. compile/profile/recompile/GC: %.2fx"
          % report.total_speedup)

    fractions = report.breakdown.fractions()
    print("\nspeculative state breakdown:")
    for state in ("serial", "run_used", "wait_used", "overhead",
                  "run_violated", "wait_violated"):
        print("  %-14s %5.1f%%" % (state, fractions[state] * 100.0))

    assert report.outputs_match(), "speculation must preserve semantics!"
    print("\nsequential and speculative outputs match: OK")


if __name__ == "__main__":
    main()
