"""Run any of the paper's 26 benchmarks through the full pipeline.

    python examples/run_benchmark.py                 # list benchmarks
    python examples/run_benchmark.py monteCarlo      # run one
    python examples/run_benchmark.py fft --size large
    python examples/run_benchmark.py db --manual     # Table 4 variant
"""

import argparse

from repro import Jrpm
from repro.minijava import compile_source
from repro.workloads import all_workloads, lookup


def list_benchmarks():
    print("%-14s %-14s %s" % ("name", "category", "description"))
    print("-" * 72)
    for workload in all_workloads():
        star = " *" if workload.has_manual_variant else ""
        print("%-14s %-14s %s%s" % (workload.name, workload.category,
                                    workload.description, star))
    print("\n(* has a Table 4 manual-transformation variant: --manual)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("name", nargs="?", help="benchmark name")
    parser.add_argument("--size", default="default",
                        choices=["small", "default", "large"])
    parser.add_argument("--manual", action="store_true",
                        help="run the manually-transformed variant")
    args = parser.parse_args()

    if args.name is None:
        list_benchmarks()
        return

    workload = lookup(args.name)
    source = (workload.manual_source(args.size) if args.manual
              else workload.source(args.size))
    if source is None:
        raise SystemExit("%s has no manual variant" % workload.name)

    print("running %s (%s, %s size%s)..."
          % (workload.name, workload.category, args.size,
             ", manual variant" if args.manual else ""))
    report = Jrpm().run(compile_source(source), name=workload.name)

    print()
    print("sequential:          %10.0f cycles" % report.sequential.cycles)
    print("profiling slowdown:  %10.1f%%"
          % ((report.profiling_slowdown - 1) * 100))
    print("selected STLs:       %10d  (of %d loops)"
          % (len(report.plans), len(report.loop_table)))
    print("predicted speedup:   %10.2fx" % report.predicted_speedup)
    print("actual TLS speedup:  %10.2fx" % report.tls_speedup)
    print("total speedup:       %10.2fx  (with all overheads)"
          % report.total_speedup)
    print("violations/commits:  %6d / %d"
          % (report.breakdown.violations, report.breakdown.commits))
    print("outputs match:       %10s" % report.outputs_match())
    if workload.paper.get("note"):
        print("\npaper note: %s" % workload.paper["note"])


if __name__ == "__main__":
    main()
