"""The §4.2 STL optimizations, demonstrated one at a time.

Runs three programs whose performance hinges on a specific optimization
— the thread synchronizing lock, the reset-able non-communicating
inductor, and private reductions — with the optimization on and off.

    python examples/optimization_playground.py
"""

from repro import Jrpm, StlOptions

SYNC_LOCK_DEMO = """
class Main {
    static int main() {
        // A random-number seed is a short, every-iteration loop-carried
        // dependency in front of a longer body: the classic case for
        // the thread synchronizing lock of paper Figure 6.
        int seed = 42;
        int wins = 0;
        for (int trial = 0; trial < 900; trial++) {
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            int roll = seed % 1000;
            int score = 0;
            for (int k = 0; k < 5; k++) {
                score += (roll * (k + 3)) % 97;
            }
            if (score > 200) { wins++; }
        }
        Sys.printInt(wins);
        Sys.printInt(seed);
        return wins;
    }
}
"""

RESETABLE_DEMO = """
class Main {
    static int main() {
        // 'cursor' advances by a constant stride but occasionally jumps
        // to an unpredictable location: the reset-able inductor of
        // paper section 4.2.3 (the BitOps pattern).
        int[] table = new int[3000];
        int cursor = 0;
        int acc = 0;
        for (int i = 0; i < 2200; i++) {
            table[cursor] = table[cursor] + i;
            acc = (acc + table[cursor]) & 0xFFFFF;
            cursor = cursor + 39;
            if (cursor >= 3000) { cursor = (i * 7) % 23; }
        }
        Sys.printInt(acc);
        return acc;
    }
}
"""

REDUCTION_DEMO = """
class Main {
    static int main() {
        // Three reductions at once: a sum, a max, and a masked
        // checksum.  All are privatized per CPU and merged at commit.
        int[] data = new int[1500];
        for (int i = 0; i < 1500; i++) {
            data[i] = (i * 2654435761) & 0xFFFF;
        }
        int total = 0;
        int biggest = 0;
        int check = 0;
        for (int i = 0; i < 1500; i++) {
            total += data[i] & 1023;
            biggest = Math.imax(biggest, data[i]);
            check = (check + data[i] * 3) & 0xFFFFFF;
        }
        Sys.printInt(total);
        Sys.printInt(biggest);
        Sys.printInt(check);
        return total;
    }
}
"""


def compare(title, source, disabled_options):
    on = Jrpm().run(source, name=title)
    off = Jrpm(stl_options=disabled_options).run(source, name=title)
    assert on.outputs_match() and off.outputs_match()
    print("%s" % title)
    print("  with the optimization:    %.2fx speedup, %d violations"
          % (on.tls_speedup, on.breakdown.violations))
    print("  without:                  %.2fx speedup, %d violations"
          % (off.tls_speedup, off.breakdown.violations))
    print("  optimization is worth:    %+.0f%% TLS time\n"
          % (100.0 * (off.tls.cycles / on.tls.cycles - 1.0)))


def main():
    print("=== STL optimization playground (paper section 4.2) ===\n")
    compare("Thread synchronizing lock (4.2.4)", SYNC_LOCK_DEMO,
            StlOptions(sync_locks=False))
    compare("Reset-able non-communicating inductor (4.2.3)",
            RESETABLE_DEMO, StlOptions(resetable_inductors=False))
    compare("Reduction operators (4.2.5)", REDUCTION_DEMO,
            StlOptions(reductions=False))


if __name__ == "__main__":
    main()
