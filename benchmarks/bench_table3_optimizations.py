"""Paper Table 3, columns (l)-(u) — speedup contributed by each STL
compiler optimization and VM modification.

Each experiment toggles exactly one feature off and compares TLS time
on the benchmarks where the paper observed the effect.  The reported
number is the paper's metric: the slowdown incurred without the
optimization (> 0% means the optimization helps).
"""

import pytest

from harness import (StlOptions, VmOptions, run_workload, write_result)


def _delta(name, **toggles):
    """% TLS-time increase when the feature is disabled."""
    base = run_workload(name)
    stl_kwargs = {k: v for k, v in toggles.items()
                  if k in StlOptions.__dataclass_fields__}
    vm_kwargs = {k: v for k, v in toggles.items()
                 if k in VmOptions.__dataclass_fields__}
    tag = "off:" + ",".join(sorted(toggles))
    ablated = run_workload(
        name, tag=tag,
        stl_options=StlOptions(**stl_kwargs) if stl_kwargs else None,
        vm_options=VmOptions(**vm_kwargs) if vm_kwargs else None)
    return 100.0 * (ablated.tls.cycles / base.tls.cycles - 1.0)


#: (table column, toggle kwargs, benchmarks the paper highlights)
EXPERIMENTS = [
    ("Opt - Overheads (new vs old handlers)", None,
     ["decJpeg", "IDEA", "raytrace", "LuFactor"]),
    ("Opt - Loop invariant regalloc", {"invariant_regalloc": False},
     ["euler", "moldyn", "shallow", "raytrace"]),
    ("Opt - Resetable inductor", {"resetable_inductors": False},
     ["BitOps", "MipsSimulator"]),
    ("Opt - Sync lock", {"sync_locks": False},
     ["monteCarlo", "db"]),
    ("Opt - Reduction", {"reductions": False},
     ["moldyn", "monteCarlo", "Huffman", "raytrace"]),
    ("Opt - Multilevel", {"multilevel": False},
     ["mp3", "Assignment"]),
    ("JVM - Allocation (parallel free lists)",
     {"parallel_allocator": False}, ["jess", "raytrace"]),
    ("JVM - Java lock (speculation-aware)",
     {"speculation_aware_locks": False}, ["db", "jess"]),
]


@pytest.mark.benchmark(group="table3-opt")
@pytest.mark.parametrize("label,toggles,names",
                         EXPERIMENTS,
                         ids=[e[0].split(" - ")[1].split(" (")[0]
                              .replace(" ", "-").lower()
                              for e in EXPERIMENTS])
def test_table3_optimization_column(benchmark, label, toggles, names):
    rows = [label]

    def experiment():
        deltas = {}
        for name in names:
            if toggles is None:
                # Old handlers come through the hardware config.
                from repro.hydra.config import (HydraConfig,
                                                SpeculationOverheads)
                base = run_workload(name)
                old = run_workload(
                    name, tag="old-handlers",
                    config=HydraConfig(
                        overheads=SpeculationOverheads.old_handlers()))
                deltas[name] = 100.0 * (old.tls.cycles
                                        / base.tls.cycles - 1.0)
            else:
                deltas[name] = _delta(name, **toggles)
        for name, delta in deltas.items():
            rows.append("  %-14s without: %+6.1f%% TLS time" % (name, delta))
        return deltas

    deltas = benchmark.pedantic(experiment, rounds=1, iterations=1)
    # Shape: disabling an optimization never helps much, and the paper's
    # showcase benchmark must show a visible cost.
    assert all(delta > -8.0 for delta in deltas.values()), deltas
    assert max(deltas.values()) > 1.0, (label, deltas)
    write_result("table3_opt_%s" %
                 label.split(" - ")[1].split(" (")[0].replace(" ", "_")
                 .lower(), rows,
                 metrics={"delta_pct_%s" % name: delta
                          for name, delta in deltas.items()},
                 config={"column": label})


@pytest.mark.benchmark(group="table3-opt")
def test_table3_hoisting_has_little_effect(benchmark):
    """Paper §6.2: 'The only compiler optimization that seems to have
    little effect is hoisting startup and shutdown handlers' — the two
    NeuralNet loops 'only benefit slightly from it'."""
    rows = ["Opt - Hoisting (paper: little effect)"]

    def experiment():
        deltas = {}
        for name in ("NeuralNet", "euler"):
            deltas[name] = _delta(name, hoisting=False)
            rows.append("  %-14s without: %+6.1f%% TLS time"
                        % (name, deltas[name]))
        return deltas

    deltas = benchmark.pedantic(experiment, rounds=1, iterations=1)
    # Small either way — hoisting must neither be load-bearing nor harmful.
    assert all(-5.0 < delta < 8.0 for delta in deltas.values()), deltas
    write_result("table3_opt_hoisting", rows,
                 metrics={"delta_pct_%s" % name: delta
                          for name, delta in deltas.items()})


@pytest.mark.benchmark(group="table3-opt")
def test_table3_inductor_optimization_is_critical(benchmark):
    """Paper §6.2: 'without this critical optimization, performance
    suffers far too much to make a meaningful comparison'."""
    rows = ["Opt - Non-communicating inductors (critical)"]

    def experiment():
        worst = 0.0
        for name in ("IDEA", "raytrace", "decJpeg"):
            delta = _delta(name, noncomm_inductors=False)
            rows.append("  %-14s without: %+6.1f%% TLS time" % (name, delta))
            worst = max(worst, delta)
        return worst

    worst = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert worst > 25.0, "inductor communication should be crippling"
    write_result("table3_opt_inductors", rows,
                 metrics={"worst_delta_pct": worst},
                 regression={"worst_delta_pct": "higher_is_better"})
