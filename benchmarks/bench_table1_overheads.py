"""Paper Table 1 — thread-level speculation overheads (cycles/operation)
and the Figure 2 memory-hierarchy constants.

Regenerates the New/Old handler-cost rows and verifies that the measured
per-entry / per-iteration overhead of an STL with a near-empty body
matches the configured handler costs.
"""

import pytest

from repro.hydra.config import HydraConfig, SpeculationOverheads
from repro.minijava import compile_source
from repro.core.pipeline import Jrpm

from harness import write_result

EMPTY_BODY_LOOP = """
class Main {
    static int main() {
        int[] sink = new int[8];
        int t = 0;
        for (int i = 0; i < 2000; i++) {
            t += i & 1;
        }
        sink[0] = t;
        Sys.printInt(t);
        return t;
    }
}
"""


def _measure_overheads(overheads):
    config = HydraConfig(overheads=overheads)
    report = Jrpm(config=config).run(compile_source(EMPTY_BODY_LOOP))
    assert report.outputs_match()
    breakdown = report.breakdown
    commits = max(breakdown.commits, 1)
    return report, breakdown.overhead / commits


@pytest.mark.benchmark(group="table1")
def test_table1_handler_overheads(benchmark):
    rows = []
    metrics = {}

    def experiment():
        new = SpeculationOverheads.new_handlers()
        old = SpeculationOverheads.old_handlers()
        rows.append("Table 1 - TLS overheads (cycles)")
        rows.append("%-16s %6s %6s" % ("operation", "New", "Old"))
        for field, label in [("startup", "STL_STARTUP"),
                             ("shutdown", "STL_SHUTDOWN"),
                             ("eoi", "STL_EOI"),
                             ("restart", "STL_RESTART")]:
            rows.append("%-16s %6d %6d"
                        % (label, getattr(new, field), getattr(old, field)))

        report_new, per_commit_new = _measure_overheads(new)
        report_old, per_commit_old = _measure_overheads(old)
        rows.append("")
        rows.append("measured overhead cycles per committed thread "
                    "(empty-body STL):")
        rows.append("  new handlers: %.1f   old handlers: %.1f"
                    % (per_commit_new, per_commit_old))
        rows.append("  TLS time new/old: %.0f / %.0f cycles"
                    % (report_new.tls.cycles, report_old.tls.cycles))
        # Shape check: old handlers must cost visibly more.
        assert per_commit_old > per_commit_new
        assert report_old.tls.cycles > report_new.tls.cycles
        # EOI dominates the per-commit overhead for a tight loop.
        assert per_commit_new >= new.eoi
        metrics.update(per_commit_new=per_commit_new,
                       per_commit_old=per_commit_old,
                       tls_cycles_new=report_new.tls.cycles,
                       tls_cycles_old=report_old.tls.cycles)
        return per_commit_new

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result(
        "table1_overheads", rows, metrics=metrics,
        config={"loop": "empty-body"},
        regression={"per_commit_new": "lower_is_better",
                    "tls_cycles_new": "lower_is_better"})


@pytest.mark.benchmark(group="table1")
def test_fig2_hardware_constants(benchmark):
    rows = []
    metrics = {}

    def experiment():
        config = HydraConfig()
        rows.append("Figure 2 - Hydra memory hierarchy")
        rows.append("%-28s %10s" % ("parameter", "value"))
        rows.append("%-28s %10d" % ("CPUs", config.num_cpus))
        rows.append("%-28s %9dB" % ("L1 data cache", config.l1_size_bytes))
        rows.append("%-28s %10d" % ("L1 associativity", config.l1_assoc))
        rows.append("%-28s %9dB" % ("L2 cache", config.l2_size_bytes))
        rows.append("%-28s %10d" % ("cache line bytes", config.line_bytes))
        rows.append("%-28s %10d" % ("L2 latency (cycles)",
                                    config.l2_hit_cycles))
        rows.append("%-28s %10d" % ("interprocessor (cycles)",
                                    config.interprocessor_cycles))
        rows.append("%-28s %10d" % ("main memory (cycles)",
                                    config.memory_cycles))
        rows.append("%-28s %10d" % ("load buffer (lines/thread)",
                                    config.load_buffer_lines))
        rows.append("%-28s %10d" % ("store buffer (lines/thread)",
                                    config.store_buffer_lines))
        # Paper figure 2 values.
        assert config.load_buffer_lines * config.line_bytes == 16 * 1024
        assert config.store_buffer_lines * config.line_bytes == 2 * 1024
        assert (config.l2_hit_cycles, config.interprocessor_cycles,
                config.memory_cycles) == (5, 10, 50)
        metrics.update(num_cpus=config.num_cpus,
                       l1_size_bytes=config.l1_size_bytes,
                       l2_size_bytes=config.l2_size_bytes,
                       load_buffer_lines=config.load_buffer_lines,
                       store_buffer_lines=config.store_buffer_lines)
        return config.num_cpus

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result("fig2_hardware", rows, metrics=metrics)
