"""Trace-subsystem overhead guard.

The observability layer (``repro.trace``) must be effectively free when
disabled and cheap when enabled:

* **disabled** — the only cost is one ``is None`` test per emission
  site, so a ``Jrpm()`` run must stay within 1%% of itself (measured as
  run-to-run noise against a second untraced run);
* **enabled**  — events are emitted only on the control path (thread
  commits / restarts / handlers / loop edges), never per memory access,
  so a fully traced run must stay within a small constant factor of the
  untraced baseline.

The bounds come from ISSUE acceptance criteria; the timings use
min-of-N wall-clock samples of the same in-process pipeline run so
interpreter warmup and allocator noise mostly cancel.

The enabled budget is *relative*, so it is recalibrated whenever the
untraced baseline gets faster: the trace layer's absolute per-event
cost is unchanged, but it is divided by a smaller denominator.

* The predecoded dispatch engine (docs/performance.md) cut untraced
  pipeline wall time ~4x; the original 5% bound against the legacy
  engine corresponds to ~20% against the fast one, and 15% kept the
  same absolute-cost guard with margin for timer noise.
* The event-driven TLS scheduler then cut the speculative portion of
  the pipeline a further ~2.2-2.5x, shrinking the baseline again
  (the sequential and profiling runs, which dominate, are
  unchanged).  The same absolute per-event cost now lands around
  15-18% of the smaller baseline on a quiet machine, so the bound is
  20% — still a factor-of-several guard against a per-memory-access
  emission regression (which would show up as 2-3x, not percent),
  while not tripping on scheduler-induced baseline shifts.

The measured run-to-run noise of two untraced runs is added to the
bound at assert time, so transient host load cannot fail the guard
spuriously (nor mask a real regression larger than the noise).

The same file guards the metrics registry (``repro.metrics``): a run
folded into an enabled registry must stay within 5% of the identical
run with ``set_enabled(False)`` — per-run report folding is the only
metrics cost, never per-instruction work.
"""

import time

import pytest

from repro.core.pipeline import Jrpm
from repro.metrics import (get_registry, observe_report, reset_registry,
                           set_enabled)
from repro.minijava import compile_source
from repro.workloads import lookup

from harness import write_result

ROUNDS = 3
DISABLED_BUDGET = 1.01      # untraced vs untraced re-run (noise bound)
ENABLED_BUDGET = 1.20       # traced vs untraced (see module docstring)
METRICS_BUDGET = 1.05       # metrics-on vs metrics-off (ISSUE bound)


def _time_run(program, name, trace, rounds=ROUNDS):
    """Minimum wall-clock seconds over *rounds* full pipeline runs."""
    best = None
    report = None
    for _ in range(rounds):
        start = time.perf_counter()
        report = Jrpm(trace=trace).run(program, name=name)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    assert report.outputs_match()
    return best, report


@pytest.mark.benchmark(group="trace")
def test_trace_overhead_within_budget(benchmark):
    rows = []
    metrics = {}
    workload = lookup("BitOps")
    program = compile_source(workload.source("small"))

    def experiment():
        # Warm the interpreter once before any timed sample.
        Jrpm().run(program, name="warmup")
        base, _ = _time_run(program, "BitOps", trace=False)
        again, _ = _time_run(program, "BitOps", trace=False)
        traced, report = _time_run(program, "BitOps", trace=True)

        noise = again / base
        overhead = traced / base
        aggregates = report.trace_aggregates
        rows.append("trace overhead guard (BitOps small, min of %d)"
                    % ROUNDS)
        rows.append("  untraced:     %.3fs" % base)
        rows.append("  untraced(2):  %.3fs  (%.1f%% vs baseline)"
                    % (again, (noise - 1.0) * 100.0))
        rows.append("  traced:       %.3fs  (%.1f%% vs baseline)"
                    % (traced, (overhead - 1.0) * 100.0))
        rows.append("  events recorded: %d (dropped %d)"
                    % (aggregates.events_recorded,
                       aggregates.events_dropped))

        # The traced run must really have produced a trace.
        assert aggregates.events_recorded > 0
        assert aggregates.counts.get("thread", 0) > 0
        # Enabled tracing stays within the budget.  (The disabled
        # path is identical code to the baseline — the noise check
        # below documents the measurement floor rather than gating on
        # a bound tighter than the machine can resolve.)
        assert overhead < ENABLED_BUDGET + max(0.0, noise - 1.0), (
            "traced run %.1f%% over baseline (budget %.0f%% + %.1f%% "
            "measured noise)"
            % ((overhead - 1.0) * 100.0,
               (ENABLED_BUDGET - 1.0) * 100.0,
               (max(0.0, noise - 1.0)) * 100.0))
        metrics.update(trace_overhead=overhead, noise=noise,
                       events_recorded=aggregates.events_recorded)
        return overhead

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result("trace_overhead", rows, metrics=metrics,
                 config={"workload": "BitOps", "size": "small",
                         "rounds": ROUNDS})


def _one_metrics_run(program, name):
    """Wall-clock seconds of one pipeline run folded into the metrics
    registry (the daemon-side per-run cost)."""
    start = time.perf_counter()
    report = Jrpm().run(program, name=name)
    observe_report(report, wall_seconds=time.perf_counter() - start)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="trace")
def test_metrics_overhead_within_budget(benchmark):
    """The metrics registry must be effectively free: folding a run's
    report into the registry (the only per-run metrics work — the hot
    simulator loop is never instrumented) stays within 5% of the same
    run with the registry globally disabled via ``set_enabled``."""
    rows = []
    metrics = {}
    workload = lookup("BitOps")
    program = compile_source(workload.source("small"))

    def experiment():
        Jrpm().run(program, name="warmup")
        reset_registry()
        # Interleave the three arms (off / off-again / on) so a host
        # load spike lands on all of them rather than one sequential
        # block; min-of-N per arm then cancels the noise.
        off = off_again = on = None
        try:
            for _ in range(2 * ROUNDS):
                set_enabled(False)
                sample = _one_metrics_run(program, "BitOps")
                off = sample if off is None else min(off, sample)
                sample = _one_metrics_run(program, "BitOps")
                off_again = (sample if off_again is None
                             else min(off_again, sample))
                set_enabled(True)
                sample = _one_metrics_run(program, "BitOps")
                on = sample if on is None else min(on, sample)
        finally:
            set_enabled(True)
        # The enabled pass really recorded something.
        assert get_registry().get("jrpm_runs") is not None

        noise = off_again / off
        overhead = on / off
        rows.append("metrics overhead guard (BitOps small, min of %d)"
                    % ROUNDS)
        rows.append("  metrics off:    %.3fs" % off)
        rows.append("  metrics off(2): %.3fs  (%.1f%% vs baseline)"
                    % (off_again, (noise - 1.0) * 100.0))
        rows.append("  metrics on:     %.3fs  (%.1f%% vs baseline)"
                    % (on, (overhead - 1.0) * 100.0))
        assert overhead < METRICS_BUDGET + max(0.0, noise - 1.0), (
            "metrics-enabled run %.1f%% over metrics-off (budget %.0f%% "
            "+ %.1f%% measured noise)"
            % ((overhead - 1.0) * 100.0,
               (METRICS_BUDGET - 1.0) * 100.0,
               (max(0.0, noise - 1.0)) * 100.0))
        metrics.update(metrics_overhead=overhead, noise=noise)
        return overhead

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result("metrics_overhead", rows, metrics=metrics,
                 config={"workload": "BitOps", "size": "small",
                         "rounds": ROUNDS})
