"""Adaptive recompilation convergence guard.

The epoch-based feedback controller (``repro.adapt``) must (a) settle
quickly — a handful of epochs, not an unbounded hunt — and (b) actually
pay for itself when the profile-time prediction is wrong.  Two
experiments:

* **convergence** — for one workload per paper category, run
  :meth:`Jrpm.run_adaptive` with the default threshold policy and
  record the epoch at which the plan set stops changing plus the final
  speedup next to the one-shot pipeline's.  Steady state must arrive
  within the epoch budget, and the converged plan must never be slower
  than one-shot beyond simulation noise.

* **misprediction recovery** — a deliberately permissive admission
  configuration (everything looks profitable to TEST) applied to a
  serially-dependent loop makes the one-shot selector pick an STL that
  mostly violates.  The controller must end strictly faster than its
  own first epoch, and the decision log must name the actions that got
  it there (this is the ISSUE acceptance scenario).
"""

import pytest

from repro.core.pipeline import Jrpm
from repro.hydra.config import HydraConfig
from repro.minijava import compile_source
from repro.workloads import lookup

from harness import write_result

#: one workload per paper category (integer / floating point / multimedia)
WORKLOADS = ("BitOps", "LuFactor", "decJpeg")
EPOCH_BUDGET = 4

#: every iteration carries a dependence through ``s`` — speculation on
#: the outer loop violates almost every time, but the permissive
#: admission config below makes it look profitable at TEST time.
SERIAL_DEP = """
class Main {
    static int main(int n) {
        int[] a = new int[n];
        int i = 0;
        while (i < n) { a[i] = i * 13 + 7; i = i + 1; }
        int s = 1;
        i = 0;
        while (i < n) {
            s = (s * 3 + a[i]) % 1000003;
            a[(i * 7) % n] = s;
            i = i + 1;
        }
        Sys.printInt(s);
        return s;
    }
}
"""


def _mispredicting_config():
    return HydraConfig(min_predicted_speedup=0.05,
                       min_iterations_per_entry=1.0)


@pytest.mark.benchmark(group="adapt")
def test_adapt_converges_within_epoch_budget(benchmark):
    rows = ["adaptive recompilation convergence (size small, "
            "epoch budget %d)" % EPOCH_BUDGET,
            "  %-10s %8s %10s %10s %10s %9s" % (
                "workload", "epochs", "converged", "one-shot", "adaptive",
                "decisions")]
    metrics = {}

    def experiment():
        for name in WORKLOADS:
            program = compile_source(lookup(name).source("small"))
            one_shot = Jrpm().run(program, name=name)
            report = Jrpm().run_adaptive(program, name=name,
                                         epochs=EPOCH_BUDGET, verify=True)
            log = report.adaptation
            assert report.outputs_match()
            assert log.converged_epoch is not None, (
                "%s did not reach a stable plan set in %d epochs"
                % (name, EPOCH_BUDGET))
            # the settled plan is never materially slower than one-shot
            assert log.final_cycles <= one_shot.tls.cycles * 1.02, (
                "%s: adaptive steady state %.0f cycles vs one-shot %.0f"
                % (name, log.final_cycles, one_shot.tls.cycles))
            rows.append("  %-10s %8d %10d %9.2fx %9.2fx %9d"
                        % (name, log.epochs_run, log.converged_epoch,
                           one_shot.tls_speedup, report.tls_speedup,
                           len(log.applied_decisions())))
            metrics["converged_epoch_%s" % name] = log.converged_epoch
            metrics["adaptive_speedup_%s" % name] = report.tls_speedup
        return True

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result(
        "adapt_convergence", rows, metrics=metrics,
        config={"workloads": list(WORKLOADS),
                "epoch_budget": EPOCH_BUDGET},
        regression={"converged_epoch_%s" % name: "lower_is_better"
                    for name in WORKLOADS})


@pytest.mark.benchmark(group="adapt")
def test_adapt_recovers_from_misprediction(benchmark):
    rows = ["misprediction recovery (permissive admission, "
            "serial-dependence loop)"]
    metrics = {}

    def experiment():
        program = compile_source(SERIAL_DEP)
        jrpm = Jrpm(config=_mispredicting_config())
        report = jrpm.run_adaptive(program, name="serialDep",
                                   args=(300,), epochs=EPOCH_BUDGET,
                                   verify=True)
        log = report.adaptation
        assert report.outputs_match()
        decisions = log.applied_decisions()
        assert decisions, "controller applied no decisions at all"
        assert log.final_cycles < log.initial_cycles, (
            "adaptation did not beat the initial selection: "
            "%.0f -> %.0f cycles"
            % (log.initial_cycles, log.final_cycles))
        gain = log.steady_state_gain
        rows.append("  epoch 0:      %12.0f cycles (mispredicted plan)"
                    % log.initial_cycles)
        rows.append("  steady state: %12.0f cycles (%.2fx gain, "
                    "%d epochs)"
                    % (log.final_cycles, gain, log.epochs_run))
        rows.append("  net cycles saved vs staying one-shot: %.0f"
                    % log.net_cycles_saved)
        for decision in decisions:
            rows.append("  applied: %s" % decision.describe())
        metrics.update(steady_state_gain=gain,
                       initial_cycles=log.initial_cycles,
                       final_cycles=log.final_cycles,
                       decisions_applied=len(decisions))
        return gain

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result(
        "adapt_misprediction", rows, metrics=metrics,
        config={"loop": "serialDep", "epoch_budget": EPOCH_BUDGET},
        regression={"steady_state_gain": "higher_is_better",
                    "final_cycles": "lower_is_better"})
