"""Paper Figure 10 — breakdown of speculative execution by time spent in
each state: serial / run-used / wait-used / overhead / run-violated /
wait-violated."""

import pytest

from repro.workloads import FLOATING, INTEGER, MULTIMEDIA, by_category

from harness import baseline_reports, write_result

_COLUMNS = ("serial", "run_used", "wait_used", "overhead",
            "run_violated", "wait_violated")


@pytest.mark.benchmark(group="fig10")
def test_fig10_state_breakdown(benchmark):
    rows = []
    metrics = {}

    def experiment():
        reports = baseline_reports()
        rows.append("Figure 10 - speculative execution state breakdown (%)")
        rows.append("%-14s %7s %8s %9s %9s %8s %8s"
                    % ("benchmark", "serial", "run-used", "wait-used",
                       "overhead", "run-vio", "wait-vio"))
        for category in (INTEGER, FLOATING, MULTIMEDIA):
            rows.append("-- %s --" % category)
            for workload in by_category(category):
                report = reports[workload.name]
                fractions = report.breakdown.fractions()
                rows.append("%-14s %6.1f%% %7.1f%% %8.1f%% %8.1f%% "
                            "%7.1f%% %7.1f%%"
                            % ((workload.name,)
                               + tuple(100 * fractions[c]
                                       for c in _COLUMNS)))
        for column in _COLUMNS:
            metrics["mean_%s" % column] = (
                sum(r.breakdown.fractions()[column]
                    for r in reports.values()) / len(reports))
        return len(reports)

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result("fig10_breakdown", rows, metrics=metrics,
                 regression={"mean_run_used": "higher_is_better"})


@pytest.mark.benchmark(group="fig10")
def test_fig10_shape_checks(benchmark):
    """The qualitative observations of §6.2 must hold."""
    rows = []
    metrics = {}

    def experiment():
        reports = baseline_reports()
        fr = {name: r.breakdown.fractions() for name, r in reports.items()}

        # Violating integer benchmarks show discarded work; clean FP
        # benchmarks are dominated by run-used.
        violated = [n for n, f in fr.items()
                    if f["run_violated"] + f["wait_violated"] > 0.10]
        clean_fp = [w.name for w in by_category(FLOATING)
                    if fr[w.name]["run_used"] > 0.5]
        rows.append("benchmarks with >10%% discarded (violated) work: %s"
                    % ", ".join(sorted(violated)))
        rows.append("floating-point benchmarks dominated by run-used: %s"
                    % ", ".join(sorted(clean_fp)))

        # Paper: compress & Huffman have significant violated state.
        assert (fr["Huffman"]["run_violated"]
                + fr["Huffman"]["wait_violated"]) > 0.05
        # Paper: FP codes are dominated by useful work.
        assert len(clean_fp) >= 4
        # Every run's fractions sum to one.
        for name, fractions in fr.items():
            assert abs(sum(fractions.values()) - 1.0) < 1e-9, name
        # db / mp3 / jess carry real serial fractions (paper column i).
        serial_heavy = [n for n, f in fr.items() if f["serial"] > 0.02]
        rows.append("benchmarks with visible serial sections: %s"
                    % ", ".join(sorted(serial_heavy)))
        metrics.update(violated_benchmarks=len(violated),
                       clean_fp_benchmarks=len(clean_fp),
                       serial_heavy_benchmarks=len(serial_heavy))
        return len(violated)

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result("fig10_shape", rows, metrics=metrics)
