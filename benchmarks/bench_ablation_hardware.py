"""Hardware ablations beyond the paper's tables — the retargetability
argument of §1 ("decompositions can be tailored dynamically for specific
hardware"): CPU count sweep, speculative buffer sizing, and the cost of
the write-through memory system."""

import pytest

from harness import HydraConfig, geomean, run_workload, write_result

SWEEP_BENCHMARKS = ["IDEA", "raytrace", "FourierTest", "decJpeg", "euler"]


@pytest.mark.benchmark(group="ablation")
def test_cpu_count_sweep(benchmark):
    rows = ["CPU count sweep (geomean speedup over %s)"
            % ", ".join(SWEEP_BENCHMARKS)]

    def experiment():
        means = {}
        for cpus in (2, 4, 8):
            speedups = []
            for name in SWEEP_BENCHMARKS:
                report = run_workload(name, tag="cpus%d" % cpus,
                                      config=HydraConfig(num_cpus=cpus))
                speedups.append(report.tls_speedup)
            means[cpus] = geomean(speedups)
            rows.append("  %d CPUs: geomean %.2fx" % (cpus, means[cpus]))
        return means

    means = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert means[2] < means[4] < means[8]
    assert means[8] > 4.0
    write_result(
        "ablation_cpus", rows,
        metrics={"geomean_%dcpus" % c: m for c, m in means.items()},
        config={"benchmarks": SWEEP_BENCHMARKS},
        regression={"geomean_4cpus": "higher_is_better",
                    "geomean_8cpus": "higher_is_better"})


@pytest.mark.benchmark(group="ablation")
def test_store_buffer_sizing(benchmark):
    """Shrinking the store buffers forces overflow stalls on loops that
    the default hardware runs cleanly (the fft/large-iteration effect of
    §6.2)."""
    rows = ["store-buffer sizing on euler (2D stencil)"]

    def experiment():
        default = run_workload("euler")
        tiny = run_workload(
            "euler", tag="tiny-buffers",
            config=HydraConfig(store_buffer_lines=2, load_buffer_lines=16))
        rows.append("  default buffers: %.2fx, %d overflow stalls"
                    % (default.tls_speedup,
                       default.breakdown.overflow_stalls))
        rows.append("  tiny buffers:    %.2fx, %d overflow stalls"
                    % (tiny.tls_speedup, tiny.breakdown.overflow_stalls))
        return default.tls_speedup, tiny.tls_speedup

    default_speedup, tiny_speedup = benchmark.pedantic(
        experiment, rounds=1, iterations=1)
    # With tiny buffers either the selector avoids the loops (fewer
    # STLs -> less speedup) or stalls eat the gain.
    assert tiny_speedup <= default_speedup + 0.05
    write_result("ablation_buffers", rows,
                 metrics={"default_speedup": default_speedup,
                          "tiny_buffer_speedup": tiny_speedup},
                 config={"workload": "euler"},
                 regression={"default_speedup": "higher_is_better"})


@pytest.mark.benchmark(group="ablation")
def test_interprocessor_latency_matters_for_sync(benchmark):
    """Synchronizing locks forward values between CPUs, so inflating the
    interprocessor latency slows sync-bound benchmarks."""
    rows = ["interprocessor latency on monteCarlo (sync-lock bound)"]

    def experiment():
        fast = run_workload("monteCarlo")
        slow = run_workload(
            "monteCarlo", tag="slow-bus",
            config=HydraConfig(interprocessor_cycles=60))
        rows.append("  10-cycle forwarding: %.2fx" % fast.tls_speedup)
        rows.append("  60-cycle forwarding: %.2fx" % slow.tls_speedup)
        return fast.tls_speedup, slow.tls_speedup

    fast_speedup, slow_speedup = benchmark.pedantic(
        experiment, rounds=1, iterations=1)
    assert slow_speedup < fast_speedup
    write_result("ablation_interprocessor", rows,
                 metrics={"fast_bus_speedup": fast_speedup,
                          "slow_bus_speedup": slow_speedup},
                 config={"workload": "monteCarlo"},
                 regression={"fast_bus_speedup": "higher_is_better"})


@pytest.mark.benchmark(group="ablation")
def test_profile_iteration_target(benchmark):
    """§8 future work: 'how much profiling is needed before
    recompilation' — sweep the 1000-iteration heuristic."""
    rows = ["profiling iteration target sweep on raytrace"]

    def experiment():
        totals = {}
        for target in (100, 1000, 10000):
            report = run_workload(
                "raytrace", tag="target%d" % target,
                config=HydraConfig(profile_iteration_target=target))
            totals[target] = report.total_speedup
            rows.append("  target %5d iterations: total speedup %.2fx "
                        "(profile fraction %.2f)"
                        % (target, report.total_speedup,
                           report.profile_fraction))
        return totals

    totals = benchmark.pedantic(experiment, rounds=1, iterations=1)
    # Less profiling -> less time spent in the slow annotated run.
    assert totals[100] >= totals[10000]
    write_result(
        "ablation_profile_target", rows,
        metrics={"total_speedup_target%d" % t: s
                 for t, s in totals.items()},
        config={"workload": "raytrace"},
        regression={"total_speedup_target1000": "higher_is_better"})


@pytest.mark.benchmark(group="ablation")
def test_dataset_sensitivity(benchmark):
    """Table 3 column (b): for data-set sensitive programs the selected
    decomposition (or its level) changes with the input size."""
    import harness
    from repro.minijava import compile_source
    from repro.workloads import lookup
    from repro.core.pipeline import Jrpm
    rows = ["data-set sensitivity: selected STLs at small vs large"]

    def experiment():
        changed = 0
        for name in ("LuFactor", "euler", "shallow"):
            workload = lookup(name)
            small = Jrpm().run(compile_source(workload.source("small")))
            large = Jrpm().run(compile_source(workload.source("large")))
            small_sel = sorted(p.meta.ordinal
                               for p in small.plans.values())
            large_sel = sorted(p.meta.ordinal
                               for p in large.plans.values())
            if small_sel != large_sel:
                changed += 1
            rows.append("  %-10s small=%s large=%s"
                        % (name, small_sel, large_sel))
        return changed

    changed = benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result("ablation_dataset", rows,
                 metrics={"selection_changed": changed},
                 config={"workloads": ["LuFactor", "euler", "shallow"]})
