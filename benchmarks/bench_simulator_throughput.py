"""Simulator throughput — not a paper experiment, but the practical
figure a user of this reproduction cares about: how many simulated
instructions per wall-clock second the behavioral simulator delivers,
sequentially and under TLS."""

import pytest

from repro.hydra.config import HydraConfig
from repro.hydra.machine import Machine
from repro.jit.compiler import compile_program
from repro.minijava import compile_source
from repro.core.pipeline import Jrpm

from harness import write_result

KERNEL = """
class Main {
    static int main() {
        int[] a = new int[1024];
        int s = 0;
        for (int i = 0; i < 1024; i++) { a[i] = (i * 33 + 7) & 1023; }
        for (int r = 0; r < 20; r++) {
            for (int i = 0; i < 1024; i++) {
                s = (s + a[i] * 3) & 0xFFFFF;
            }
        }
        Sys.printInt(s);
        return s;
    }
}
"""


@pytest.mark.benchmark(group="throughput")
def test_sequential_simulation_throughput(benchmark):
    config = HydraConfig()
    compiled = compile_program(compile_source(KERNEL), config)

    def run_once():
        machine = Machine(compiled, config)
        return machine.run()

    result = benchmark(run_once)
    rate = result.instructions / benchmark.stats["mean"]
    write_result("throughput_sequential", [
        "sequential simulator throughput",
        "  %d simulated instructions / run" % result.instructions,
        "  ~%.0f simulated instructions / wall second" % rate,
    ])
    assert result.guest_exception is None
    assert rate > 10_000     # sanity floor for pure-Python simulation


@pytest.mark.benchmark(group="throughput")
def test_full_pipeline_throughput(benchmark):
    program = compile_source(KERNEL)

    def run_pipeline():
        return Jrpm().run(program, name="throughput")

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    simulated = (report.sequential.instructions
                 + report.profiling.instructions
                 + report.tls.instructions)
    write_result("throughput_pipeline", [
        "full-pipeline cost for the throughput kernel",
        "  sequential: %d instructions" % report.sequential.instructions,
        "  profiled:   %d instructions" % report.profiling.instructions,
        "  speculative: %d instructions" % report.tls.instructions,
        "  total simulated: %d" % simulated,
        "  TLS speedup: %.2fx" % report.tls_speedup,
    ])
    assert report.outputs_match()
