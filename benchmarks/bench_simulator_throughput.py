"""Simulator throughput — not a paper experiment, but the practical
figure a user of this reproduction cares about: how many simulated
instructions per wall-clock second the behavioral simulator delivers,
sequentially and under TLS.

Each case measures the predecoded fastpath engine (the default) with
pytest-benchmark and then takes a single timed legacy-dispatch
(``--no-fastpath``) run of the same work, so every
``benchmarks/results/throughput_*.txt`` records the fastpath-vs-legacy
rate pair and the engine speedup stays visible in the perf trajectory
(see docs/performance.md).
"""

import time

import pytest

from repro.hydra.config import HydraConfig
from repro.hydra.machine import Machine
from repro.jit.compiler import compile_program
from repro.minijava import compile_source
from repro.core.pipeline import Jrpm

from harness import write_result

KERNEL = """
class Main {
    static int main() {
        int[] a = new int[1024];
        int s = 0;
        for (int i = 0; i < 1024; i++) { a[i] = (i * 33 + 7) & 1023; }
        for (int r = 0; r < 20; r++) {
            for (int i = 0; i < 1024; i++) {
                s = (s + a[i] * 3) & 0xFFFFF;
            }
        }
        Sys.printInt(s);
        return s;
    }
}
"""


@pytest.mark.benchmark(group="throughput")
def test_sequential_simulation_throughput(benchmark):
    config = HydraConfig()
    compiled = compile_program(compile_source(KERNEL), config)

    def run_once():
        machine = Machine(compiled, config)
        return machine.run()

    result = benchmark(run_once)
    rate = result.instructions / benchmark.stats["mean"]

    legacy_config = HydraConfig(fastpath=False)
    legacy_compiled = compile_program(compile_source(KERNEL),
                                      legacy_config)
    start = time.perf_counter()
    legacy_result = Machine(legacy_compiled, legacy_config).run()
    legacy_elapsed = time.perf_counter() - start
    legacy_rate = legacy_result.instructions / legacy_elapsed
    assert legacy_result.instructions == result.instructions
    assert legacy_result.cycles == result.cycles      # cycle-exact

    write_result("throughput_sequential", [
        "sequential simulator throughput",
        "  %d simulated instructions / run" % result.instructions,
        "  fastpath:      ~%.0f simulated instructions / wall second"
        % rate,
        "  --no-fastpath: ~%.0f simulated instructions / wall second"
        % legacy_rate,
        "  engine speedup: %.2fx" % (rate / legacy_rate),
    ], metrics={"instructions": result.instructions,
                "fastpath_insn_per_sec": rate,
                "legacy_insn_per_sec": legacy_rate,
                "engine_speedup": rate / legacy_rate},
       config={"kernel": "throughput", "mode": "sequential"},
       regression={"instructions": "lower_is_better"})
    assert result.guest_exception is None
    assert rate > 10_000     # sanity floor for pure-Python simulation
    # the predecoded engine must stay comfortably ahead of the legacy
    # dispatch chain (acceptance: >= 2x the pre-engine baseline rate)
    assert rate > 2 * legacy_rate


@pytest.mark.benchmark(group="throughput")
def test_tls_simulation_throughput(benchmark):
    """Speculative-mode throughput: the step-5 TLS run re-executed on
    prebuilt STL code (profiling and selection staged out), under the
    default event-driven scheduler, the stepwise oracle, and the
    legacy dispatch (``scripts/bench_tls_scheduler.py`` is the
    standalone version of this measurement)."""

    def stage(fastpath, scheduler="event"):
        jrpm = Jrpm(config=HydraConfig(fastpath=fastpath,
                                       scheduler=scheduler))
        program = compile_source(KERNEL)
        baseline = jrpm.compile_baseline(program)
        profile = jrpm.profile(program)
        plans = jrpm.select(profile)
        recompiled = jrpm.recompile(program, plans)
        assert plans and recompiled is not None, \
            "throughput kernel no longer selects an STL"
        return jrpm, recompiled, plans, baseline

    jrpm, recompiled, plans, baseline = stage(fastpath=True)

    def run_tls():
        return jrpm.execute_tls(recompiled, plans,
                                fallback=baseline.measurement)

    artifact = benchmark(run_tls)
    instructions = artifact.measurement.instructions
    rate = instructions / benchmark.stats["mean"]

    def timed_once(fastpath, scheduler):
        jrpm_x, code_x, plans_x, base_x = stage(fastpath, scheduler)
        start = time.perf_counter()
        artifact_x = jrpm_x.execute_tls(code_x, plans_x,
                                        fallback=base_x.measurement)
        elapsed = time.perf_counter() - start
        # observational-exactness spot check across all executions
        assert artifact_x.measurement.cycles == artifact.measurement.cycles
        assert artifact_x.measurement.instructions == instructions
        return artifact_x.measurement.instructions / elapsed

    stepwise_rate = timed_once(True, "stepwise")
    legacy_rate = timed_once(False, "stepwise")

    write_result("throughput_tls", [
        "TLS-mode simulator throughput (step-5 speculative run)",
        "  %d simulated instructions / run" % instructions,
        "  %d simulated cycles / run (identical across all three"
        " executions)" % artifact.measurement.cycles,
        "  event scheduler (default):  ~%.0f simulated instructions"
        " / wall second" % rate,
        "  stepwise scheduler:         ~%.0f simulated instructions"
        " / wall second" % stepwise_rate,
        "  legacy (--no-fastpath):     ~%.0f simulated instructions"
        " / wall second" % legacy_rate,
        "  event / stepwise: %.2fx    event / legacy: %.2fx"
        % (rate / stepwise_rate, rate / legacy_rate),
        "  (same-run ratio pairs are the stable signal; absolute"
        " rates move with host load)",
    ], metrics={"instructions": instructions,
                "cycles": artifact.measurement.cycles,
                "event_insn_per_sec": rate,
                "stepwise_insn_per_sec": stepwise_rate,
                "legacy_insn_per_sec": legacy_rate,
                "event_vs_stepwise": rate / stepwise_rate},
       config={"kernel": "throughput", "mode": "tls"},
       regression={"cycles": "lower_is_better"})
    assert rate > 10_000
    # the event scheduler must stay comfortably ahead of the scan
    assert rate > 1.5 * stepwise_rate


@pytest.mark.benchmark(group="throughput")
def test_full_pipeline_throughput(benchmark):
    program = compile_source(KERNEL)

    def run_pipeline():
        return Jrpm().run(program, name="throughput")

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    simulated = (report.sequential.instructions
                 + report.profiling.instructions
                 + report.tls.instructions)

    start = time.perf_counter()
    legacy_report = Jrpm(config=HydraConfig(fastpath=False)).run(
        program, name="throughput")
    legacy_elapsed = time.perf_counter() - start
    assert legacy_report.tls.cycles == report.tls.cycles

    write_result("throughput_pipeline", [
        "full-pipeline cost for the throughput kernel",
        "  sequential: %d instructions" % report.sequential.instructions,
        "  profiled:   %d instructions" % report.profiling.instructions,
        "  speculative: %d instructions" % report.tls.instructions,
        "  total simulated: %d" % simulated,
        "  TLS speedup: %.2fx" % report.tls_speedup,
        "  fastpath wall: %.2fs   --no-fastpath wall: %.2fs (%.2fx)"
        % (benchmark.stats["mean"], legacy_elapsed,
           legacy_elapsed / benchmark.stats["mean"]),
    ], metrics={"total_simulated_instructions": simulated,
                "tls_speedup": report.tls_speedup,
                "fastpath_wall_seconds": benchmark.stats["mean"],
                "legacy_wall_seconds": legacy_elapsed},
       config={"kernel": "throughput", "mode": "pipeline"},
       regression={"tls_speedup": "higher_is_better"})
    assert report.outputs_match()
