"""Paper Table 3, columns (a)-(k) — benchmark characteristics and TLS
statistics: loop counts, nesting depth, selected STLs, thread sizes,
threads per STL entry, serial fraction, and speculative buffer usage."""

import pytest

from repro.workloads import FLOATING, INTEGER, MULTIMEDIA, by_category

from harness import baseline_reports, write_result


def _table3_row(workload, report):
    loop_count = len(report.loop_table)                        # (c)
    max_depth = max(report.max_dynamic_depth,
                    max((m.depth for m in report.loop_table.values()),
                        default=0))                            # (d)
    plans = report.plans
    selected = len(plans)                                      # (e)
    if plans:
        avg_depth = (sum(p.meta.depth for p in plans.values())
                     / len(plans))                             # (f)
    else:
        avg_depth = 0.0
    run_stats = [report.stl_run_stats.get(lid) for lid in plans]
    run_stats = [s for s in run_stats if s is not None and
                 s.threads_committed > 0]
    if run_stats:
        dominant = max(run_stats, key=lambda s: s.cycles_total)
        thread_size = dominant.avg_thread_cycles               # (g)
        threads_entry = dominant.threads_per_entry             # (h)
        load_lines = dominant.avg_load_lines                   # (j)
        store_lines = dominant.avg_store_lines                 # (k)
    else:
        thread_size = threads_entry = load_lines = store_lines = 0.0
    serial = report.serial_fraction                            # (i)
    return (workload.name,
            "Y" if workload.analyzable else "N",
            "Y" if workload.data_set_sensitive else "N",
            loop_count, max_depth, selected, avg_depth,
            thread_size, threads_entry, serial * 100,
            load_lines, store_lines)


@pytest.mark.benchmark(group="table3")
def test_table3_characteristics(benchmark):
    rows = []
    collected = {}

    def experiment():
        reports = baseline_reports()
        rows.append("Table 3 (a-k) - benchmark characteristics / TLS stats")
        rows.append("%-14s %2s %2s %5s %5s %4s %5s %8s %9s %7s %6s %6s"
                    % ("benchmark", "a", "b", "loops", "depth", "sel",
                       "avgD", "thrSize", "thr/entry", "serial%",
                       "ldLn", "stLn"))
        for category in (INTEGER, FLOATING, MULTIMEDIA):
            rows.append("-- %s --" % category)
            for workload in by_category(category):
                row = _table3_row(workload, reports[workload.name])
                collected[workload.name] = row
                rows.append("%-14s %2s %2s %5d %5d %4d %5.1f %8.0f %9.1f "
                            "%6.1f%% %6.1f %6.1f" % row)
        return len(collected)

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Shape checks against the paper's qualitative observations (§6.1).
    reports = baseline_reports()
    # "larger programs contain significant numbers of loops"
    assert max(row[3] for row in collected.values()) >= 8
    # Fewer than half the benchmarks look statically analyzable (col a).
    analyzable = sum(1 for row in collected.values() if row[1] == "Y")
    assert analyzable < 13
    # Most benchmarks select at least one STL.
    selected = sum(1 for row in collected.values() if row[5] > 0)
    assert selected >= 22
    # Thread sizes are "at least a hundred or more cycles" for most.
    sizable = sum(1 for row in collected.values() if row[7] >= 60)
    assert sizable >= 13
    # mp3/db/jess have visible serial fractions (column i).
    assert collected["db"][9] > 0 or collected["mp3"][9] > 0 \
        or collected["jess"][9] > 0
    write_result(
        "table3_characteristics", rows,
        metrics={"workloads": len(collected),
                 "analyzable": analyzable,
                 "selected_any_stl": selected,
                 "total_selected_stls": sum(row[5] for row in
                                            collected.values())},
        regression={"selected_any_stl": "higher_is_better"})


@pytest.mark.benchmark(group="table3")
def test_table3_buffer_usage_within_hardware_limits(benchmark):
    rows = []
    metrics = {}

    def experiment():
        reports = baseline_reports()
        worst_load = worst_store = 0.0
        for name, report in reports.items():
            for stats in report.stl_run_stats.values():
                if stats.threads_committed:
                    worst_load = max(worst_load, stats.avg_load_lines)
                    worst_store = max(worst_store, stats.avg_store_lines)
        config = next(iter(reports.values())).config
        rows.append("speculative buffer usage vs hardware limits")
        rows.append("worst avg load lines:  %.1f / %d"
                    % (worst_load, config.load_buffer_lines))
        rows.append("worst avg store lines: %.1f / %d"
                    % (worst_store, config.store_buffer_lines))
        # The selector rejects overflow-prone loops, so committed
        # threads stay within the buffers on average.
        assert worst_load <= config.load_buffer_lines
        assert worst_store <= config.store_buffer_lines
        metrics.update(worst_avg_load_lines=worst_load,
                       worst_avg_store_lines=worst_store)
        return worst_load

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result("table3_buffers", rows, metrics=metrics,
                 regression={"worst_avg_store_lines": "lower_is_better"})
