"""Machine-readable benchmark telemetry (``BENCH_<name>.json``).

Every ``bench_*.py`` (and ``scripts/bench_*.py``) routes its headline
numbers through :func:`emit` — usually via the ``metrics=`` parameter
of :func:`harness.write_result` — which writes a versioned JSON
document next to the free-text ``.txt``:

.. code-block:: json

    {"schema": 1, "name": "trace_overhead", "generated_at": ...,
     "git": {"commit": "abc123", "dirty": false},
     "config": {"workload": "BitOps", "size": "small"},
     "metrics": {"overhead_enabled": 1.08, ...},
     "regression": {"overhead_enabled": "lower_is_better"}}

* ``metrics`` is flat ``str -> number`` — the machine-readable
  trajectory the repo is judged against;
* ``regression`` marks the subset of metrics that
  ``scripts/check_bench_regression.py`` diffs against the committed
  baseline (``benchmarks/baseline/``), with the direction that counts
  as a regression.  Wall-clock-noisy metrics are deliberately left
  out; simulated cycles/speedups are deterministic and CI-stable.

:func:`validate_bench_dict` is the schema gate used by the tests,
``scripts/check_bench_schema.py`` and CI.
"""

import json
import os
import subprocess
import time

#: Version of the BENCH_*.json document layout.
BENCH_SCHEMA_VERSION = 1

#: Where the documents land (same directory as the .txt results).
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

_DIRECTIONS = ("higher_is_better", "lower_is_better")


def bench_path(name, results_dir=None):
    """Path of the telemetry document for one experiment name."""
    return os.path.join(results_dir or RESULTS_DIR,
                        "BENCH_%s.json" % name)


def git_fingerprint(cwd=None):
    """Best-effort ``{"commit": hex|None, "dirty": bool|None}``.

    Tolerates missing git / not-a-repo (both fields None) so telemetry
    still emits from exported tarballs.
    """
    cwd = cwd or os.path.dirname(os.path.abspath(__file__))
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd,
            capture_output=True, text=True, timeout=10, check=True)
        return {"commit": commit, "dirty": bool(status.stdout.strip())}
    except (OSError, subprocess.SubprocessError):
        return {"commit": None, "dirty": None}


def emit(name, metrics, config=None, regression=None, results_dir=None):
    """Write ``BENCH_<name>.json``; returns the document dict.

    *metrics* must be a flat ``str -> int|float`` mapping; *regression*
    (optional) maps a subset of those names to a direction string
    (``higher_is_better`` / ``lower_is_better``).  The document is
    validated before it is written — a benchmark can never publish a
    payload the schema gate would reject.
    """
    document = {
        "schema": BENCH_SCHEMA_VERSION,
        "name": name,
        "generated_at": time.time(),
        "git": git_fingerprint(),
        "config": dict(config or {}),
        "metrics": dict(metrics),
        "regression": dict(regression or {}),
    }
    problems = validate_bench_dict(document)
    if problems:
        raise ValueError("refusing to emit invalid telemetry for %s: %s"
                         % (name, "; ".join(problems)))
    results_dir = results_dir or RESULTS_DIR
    os.makedirs(results_dir, exist_ok=True)
    path = bench_path(name, results_dir)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return document


def load(name, results_dir=None):
    """Read one telemetry document (no validation); raises on absence."""
    with open(bench_path(name, results_dir)) as fh:
        return json.load(fh)


def validate_bench_dict(document):
    """Structural check of one telemetry document.

    Returns a list of problem strings — empty when the document is a
    valid schema-1 payload.
    """
    problems = []
    if not isinstance(document, dict):
        return ["document must be a JSON object"]
    if document.get("schema") != BENCH_SCHEMA_VERSION:
        problems.append("schema must be %d, got %r"
                        % (BENCH_SCHEMA_VERSION,
                           document.get("schema")))
    name = document.get("name")
    if not isinstance(name, str) or not name:
        problems.append("name must be a non-empty string")
    generated = document.get("generated_at")
    if not isinstance(generated, (int, float)) or generated <= 0:
        problems.append("generated_at must be a positive epoch number")
    git = document.get("git")
    if (not isinstance(git, dict) or "commit" not in git
            or "dirty" not in git):
        problems.append("git must be an object with commit and dirty")
    else:
        if git["commit"] is not None and not isinstance(git["commit"],
                                                        str):
            problems.append("git.commit must be a string or null")
        if git["dirty"] is not None and not isinstance(git["dirty"],
                                                       bool):
            problems.append("git.dirty must be a bool or null")
    config = document.get("config")
    if not isinstance(config, dict):
        problems.append("config must be an object")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("metrics must be a non-empty object")
        metrics = {}
    for key, value in metrics.items():
        if not isinstance(key, str):
            problems.append("metric name %r is not a string" % (key,))
        if isinstance(value, bool) or not isinstance(value,
                                                     (int, float)):
            problems.append("metric %r is not numeric (%r)"
                            % (key, value))
    regression = document.get("regression")
    if not isinstance(regression, dict):
        problems.append("regression must be an object")
        regression = {}
    for key, direction in regression.items():
        if key not in metrics:
            problems.append("regression key %r has no metric" % (key,))
        if direction not in _DIRECTIONS:
            problems.append("regression %r: direction must be one of %s"
                            % (key, "/".join(_DIRECTIONS)))
    return problems
