"""Paper Figure 9 — total program speedup including compilation, garbage
collection, profiling and recompilation overheads."""

import pytest

from repro.workloads import FLOATING, INTEGER, MULTIMEDIA, by_category

from harness import SIZE, baseline_reports, geomean, write_result


@pytest.mark.benchmark(group="fig9")
def test_fig9_total_program_speedup(benchmark):
    rows = []
    metrics = {}

    def experiment():
        reports = baseline_reports()
        rows.append("Figure 9 - total program speedup with overheads")
        rows.append("%-14s %8s %8s   %s"
                    % ("benchmark", "tls", "total",
                       "phase split (app/gc/compile/profile/recompile %)"))
        for category in (INTEGER, FLOATING, MULTIMEDIA):
            rows.append("-- %s --" % category)
            for workload in by_category(category):
                report = reports[workload.name]
                phases = report.phase_cycles()
                total = sum(phases.values()) or 1.0
                split = "/".join("%.0f" % (100.0 * phases[k] / total)
                                 for k in ("application", "gc", "compile",
                                           "profiling", "recompile"))
                rows.append("%-14s %7.2fx %7.2fx   %s"
                            % (workload.name, report.tls_speedup,
                               report.total_speedup, split))
        metrics["geomean_total_speedup"] = geomean(
            [r.total_speedup for r in reports.values()])
        metrics["geomean_tls_speedup"] = geomean(
            [r.tls_speedup for r in reports.values()])
        return len(reports)

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result(
        "fig9_total_speedup", rows, metrics=metrics,
        config={"size": SIZE},
        regression={"geomean_total_speedup": "higher_is_better"})


@pytest.mark.benchmark(group="fig9")
def test_fig9_overheads_are_small(benchmark):
    """Paper §6.2: 'overheads for profiling and dynamic recompilation
    [are] small, even for the shorter running benchmarks'."""
    rows = []
    metrics = {}

    def experiment():
        reports = baseline_reports()
        ratios = []
        for name, report in reports.items():
            if not report.plans:
                continue
            ratio = report.total_speedup / report.tls_speedup
            ratios.append((name, ratio))
        worst = min(ratios, key=lambda x: x[1])
        mean = geomean([r for __, r in ratios])
        rows.append("total/tls speedup retention (1.0 = overhead-free)")
        rows.append("geomean retention: %.2f   worst: %.2f (%s)"
                    % (mean, worst[1], worst[0]))
        # With the profiling target scaled to the ~100x-shorter data
        # sets, overheads must stay modest (paper: 'small, even for the
        # shorter running benchmarks').
        assert mean > 0.70
        metrics["geomean_retention"] = mean
        metrics["worst_retention"] = worst[1]
        return mean

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result(
        "fig9_overhead_retention", rows, metrics=metrics,
        config={"size": SIZE},
        regression={"geomean_retention": "higher_is_better"})
