"""Paper Figure 8 — per-benchmark normalized execution time: slowdown
during profiling, TEST-predicted TLS time, and actual TLS time (4 CPUs),
plus the §1/§6 headline category speedup bands.
"""

import pytest

from repro.workloads import (CATEGORY_SPEEDUP_BANDS, FLOATING, INTEGER,
                             MULTIMEDIA, by_category)

from harness import SIZE, baseline_reports, geomean, write_result


@pytest.mark.benchmark(group="fig8")
def test_fig8_normalized_execution(benchmark):
    rows = []
    metrics = {}

    def experiment():
        reports = benchmark_reports[0]
        rows.append("Figure 8 - normalized execution time "
                    "(1.0 = sequential; lower is faster)")
        rows.append("%-14s %10s %10s %8s %8s"
                    % ("benchmark", "profiling", "predicted", "actual",
                       "speedup"))
        for category in (INTEGER, FLOATING, MULTIMEDIA):
            rows.append("-- %s --" % category)
            for workload in by_category(category):
                report = reports[workload.name]
                predicted_norm = (report.predicted_tls_cycles
                                  / report.sequential.cycles)
                actual_norm = report.tls.cycles / report.sequential.cycles
                rows.append("%-14s %10.3f %10.3f %8.3f %8.2fx"
                            % (workload.name, report.profiling_slowdown,
                               predicted_norm, actual_norm,
                               report.tls_speedup))
        metrics["workloads"] = len(reports)
        metrics["geomean_tls_speedup"] = geomean(
            [r.tls_speedup for r in reports.values()])
        metrics["geomean_predicted_speedup"] = geomean(
            [r.predicted_speedup for r in reports.values() if r.plans])
        return len(reports)

    benchmark_reports = [None]

    def run_all():
        benchmark_reports[0] = baseline_reports()
        return experiment()

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_result("fig8_speedups", rows, metrics=metrics,
                 config={"size": SIZE, "variant": "base"},
                 regression={"geomean_tls_speedup": "higher_is_better"})


@pytest.mark.benchmark(group="fig8")
def test_fig8_profiling_slowdown_band(benchmark):
    rows = []
    metrics = {}

    def experiment():
        reports = baseline_reports()
        slowdowns = {name: r.profiling_slowdown
                     for name, r in reports.items()}
        average = sum(slowdowns.values()) / len(slowdowns)
        worst = max(slowdowns.values())
        rows.append("Profiling slowdown (paper: avg 7.8%%, worst ~25%%)")
        rows.append("measured: avg %.1f%%  worst %.1f%% (%s)"
                    % ((average - 1) * 100, (worst - 1) * 100,
                       max(slowdowns, key=slowdowns.get)))
        # Shape: profiling is cheap — the whole point of TEST hardware.
        assert average < 1.5
        assert worst < 2.0
        metrics["avg_profiling_slowdown"] = average
        metrics["worst_profiling_slowdown"] = worst
        return average

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result(
        "fig8_profiling_band", rows, metrics=metrics,
        config={"size": SIZE},
        regression={"avg_profiling_slowdown": "lower_is_better"})


@pytest.mark.benchmark(group="fig8")
def test_fig8_category_speedup_bands(benchmark):
    rows = []
    metrics = {}

    def experiment():
        reports = baseline_reports()
        rows.append("Headline speedup bands on 4 CPUs "
                    "(paper: FP 3-4x, MM 2-3x, INT 1.5-2.5x)")
        means = {}
        for category in (INTEGER, FLOATING, MULTIMEDIA):
            speedups = [reports[w.name].tls_speedup
                        for w in by_category(category)]
            means[category] = geomean(speedups)
            low, high = CATEGORY_SPEEDUP_BANDS[category]
            rows.append("%-16s geomean %.2fx  (paper band %.1f-%.1fx; "
                        "min %.2fx max %.2fx)"
                        % (category, means[category], low, high,
                           min(speedups), max(speedups)))
        # Shape checks: ordering of categories matches the paper.
        assert means[FLOATING] > means[INTEGER]
        assert means[FLOATING] > 2.3
        assert means[MULTIMEDIA] > 1.8
        assert 1.2 < means[INTEGER]
        for category, mean in means.items():
            metrics["geomean_%s" % category.replace(" ", "_")] = mean
        return means[FLOATING]

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result(
        "fig8_category_bands", rows, metrics=metrics,
        config={"size": SIZE},
        regression={"geomean_%s" % c.replace(" ", "_"): "higher_is_better"
                    for c in (INTEGER, FLOATING, MULTIMEDIA)})


@pytest.mark.benchmark(group="fig8")
def test_fig8_prediction_tracks_actual(benchmark):
    rows = []
    metrics = {}

    def experiment():
        reports = baseline_reports()
        optimistic = 0
        close = 0
        for name, report in reports.items():
            if not report.plans:
                continue
            ratio = report.predicted_speedup / max(report.tls_speedup, 1e-9)
            if ratio >= 1.0:
                optimistic += 1
            if 0.5 < ratio < 2.5:
                close += 1
        total = sum(1 for r in reports.values() if r.plans)
        rows.append("TEST prediction vs actual (paper: predictions are "
                    "optimistic; violations are not modeled)")
        rows.append("predictions within 0.5x-2.5x of actual: %d/%d"
                    % (close, total))
        rows.append("predictions >= actual (optimistic): %d/%d"
                    % (optimistic, total))
        assert close >= total * 0.8
        # Predictions skew optimistic, as §6.2 reports.
        assert optimistic >= total * 0.5
        metrics.update(predictions_close=close,
                       predictions_optimistic=optimistic,
                       predictions_total=total)
        return close

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_result(
        "fig8_prediction_quality", rows, metrics=metrics,
        config={"size": SIZE},
        regression={"predictions_close": "higher_is_better"})
