"""Paper Table 4 — manual transformations that expose parallelism the
compiler cannot find, with difficulty and automation assessments.

For each of the six integer benchmarks, runs the pipeline on the
as-written program and on the manually-transformed variant and reports
the TLS speedup of each (the paper's Table 3 column (u) effect).
"""

import pytest

from repro.workloads import all_workloads

from harness import run_workload, write_result

MANUAL = [w for w in all_workloads() if w.has_manual_variant]


@pytest.mark.benchmark(group="table4")
def test_table4_manual_transformations(benchmark):
    rows = []
    improvements = {}

    def experiment():
        rows.append("Table 4 - manual transformations")
        rows.append("%-14s %5s %5s %6s %8s %8s %7s"
                    % ("benchmark", "diff", "auto?", "lines",
                       "base", "manual", "gain"))
        for workload in MANUAL:
            base = run_workload(workload.name)
            manual = run_workload(workload.name, variant="manual")
            notes = workload.manual_notes
            gain = manual.tls_speedup / max(base.tls_speedup, 1e-9)
            improvements[workload.name] = gain
            rows.append("%-14s %5s %5s %6d %7.2fx %7.2fx %+6.0f%%"
                        % (workload.name, notes["difficulty"],
                           "Y" if notes["compiler_optimizable"] else "N",
                           notes["lines"], base.tls_speedup,
                           manual.tls_speedup, (gain - 1) * 100))
            rows.append("    %s" % notes["operation"])
        return improvements

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    # Shape: the transformations significantly improve performance on
    # the benchmarks whose parallelism the compiler cannot expose
    # (Huffman's sub-word streams, compress's dictionary, the MIPS
    # interpreter state).  Where this reproduction's *automatic*
    # machinery already handles the dependency (db and monteCarlo get a
    # thread synchronizing lock; NumHeapSort's extract loop pipelines
    # under cheap early violations), the manual variant no longer wins
    # — see EXPERIMENTS.md for the discussion of this deviation.
    helped = sum(1 for gain in improvements.values() if gain > 1.10)
    assert helped >= 3, improvements
    # And they never destroy performance outright.
    assert all(gain > 0.45 for gain in improvements.values()), improvements
    write_result("table4_manual", rows,
                 metrics={"gain_%s" % name: gain
                          for name, gain in improvements.items()},
                 regression={"gain_Huffman": "higher_is_better"})


@pytest.mark.benchmark(group="table4")
def test_table4_manual_variants_do_not_slow_sequential(benchmark):
    """Paper: the transformations 'do not slowdown the original
    sequential execution' (within a modest tolerance)."""
    rows = ["manual variant sequential cost (vs as-written)"]

    def experiment():
        worst = 0.0
        for workload in MANUAL:
            base = run_workload(workload.name)
            manual = run_workload(workload.name, variant="manual")
            ratio = manual.sequential.cycles / base.sequential.cycles
            worst = max(worst, ratio)
            rows.append("  %-14s sequential x%.2f"
                        % (workload.name, ratio))
        return worst

    worst = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert worst < 2.0
    write_result("table4_sequential_cost", rows,
                 metrics={"worst_sequential_ratio": worst},
                 regression={"worst_sequential_ratio": "lower_is_better"})
