"""The 26-benchmark suite: registry integrity and program correctness.

Full-pipeline runs of every workload live in the benchmark harness; the
tests here check the registry's shape and that every program (at the
small size) compiles, verifies, and runs on both the interpreter and
the machine with identical results.
"""

import pytest

from repro.bytecode import run_program, verify_program
from repro.minijava import compile_source
from repro.workloads import (CATEGORY_SPEEDUP_BANDS, FLOATING, INTEGER,
                             MULTIMEDIA, all_workloads, by_category, lookup,
                             names)

from conftest import machine_run


def test_registry_has_26_workloads():
    assert len(all_workloads()) == 26


def test_category_counts_match_table3():
    assert len(by_category(INTEGER)) == 14
    assert len(by_category(FLOATING)) == 7
    assert len(by_category(MULTIMEDIA)) == 5


def test_all_table3_names_present():
    expected = {
        "Assignment", "BitOps", "compress", "db", "deltaBlue",
        "EmFloatPnt", "Huffman", "IDEA", "jess", "jLex", "MipsSimulator",
        "monteCarlo", "NumHeapSort", "raytrace",
        "euler", "fft", "FourierTest", "LuFactor", "moldyn", "NeuralNet",
        "shallow",
        "decJpeg", "encJpeg", "h263dec", "mpegVideo", "mp3",
    }
    assert set(names()) == expected


def test_manual_variants_match_table4():
    expected_manual = {"NumHeapSort", "Huffman", "MipsSimulator", "db",
                       "compress", "monteCarlo"}
    actual = {w.name for w in all_workloads() if w.has_manual_variant}
    assert actual == expected_manual


def test_manual_notes_have_required_fields():
    for workload in all_workloads():
        if workload.has_manual_variant:
            notes = workload.manual_notes
            assert notes["difficulty"] in ("Low", "Med", "High")
            assert isinstance(notes["lines"], int)
            assert notes["operation"]


def test_speedup_bands_cover_categories():
    for category in (INTEGER, FLOATING, MULTIMEDIA):
        low, high = CATEGORY_SPEEDUP_BANDS[category]
        assert 1.0 < low < high <= 4.0


def test_lookup_unknown_raises():
    with pytest.raises(KeyError):
        lookup("not-a-benchmark")


def test_sizes_produce_growing_programs():
    workload = lookup("IDEA")
    small = run_program(compile_source(workload.source("small")))
    large = run_program(compile_source(workload.source("large")))
    assert large.instructions > small.instructions * 1.5


@pytest.mark.parametrize("name", names())
def test_workload_compiles_and_verifies(name):
    program = compile_source(lookup(name).source("small"))
    verify_program(program)


@pytest.mark.parametrize("name", names())
def test_workload_machine_matches_interpreter(name):
    src = lookup(name).source("small")
    expected = run_program(compile_source(src))
    actual = machine_run(src)
    assert actual.guest_exception is None
    assert actual.output == expected.output


@pytest.mark.parametrize("name", sorted(
    w.name for w in all_workloads() if w.has_manual_variant))
def test_manual_variant_runs(name):
    src = lookup(name).manual_source("small")
    result = run_program(compile_source(src))
    assert result.output
    actual = machine_run(src)
    assert actual.output == result.output
