"""Container-model unit tests: types, layout, resolution."""

import pytest

from repro.bytecode import (ClassDef, Field, FLOAT, HEADER_BYTES, INT,
                            Method, Program, Type, VOID, WORD)
from repro.errors import VerifyError


class TestType:
    def test_parse_scalar(self):
        assert Type.parse("int") == INT
        assert Type.parse("float") == FLOAT

    def test_parse_array(self):
        t = Type.parse("int[][]")
        assert t.base == "int" and t.dims == 2
        assert t.element() == Type("int", 1)
        assert t.element().element() == INT

    def test_array_of(self):
        assert INT.array_of() == Type("int", 1)

    def test_predicates(self):
        assert INT.is_int() and INT.is_numeric() and not INT.is_reference()
        assert FLOAT.is_float() and FLOAT.is_numeric()
        assert Type("boolean").is_int()
        assert VOID.is_void()
        assert Type("Foo").is_reference()
        assert Type("int", 1).is_reference()
        assert Type("int", 1).is_array()

    def test_element_of_scalar_raises(self):
        with pytest.raises(ValueError):
            INT.element()


class TestLayout:
    def test_field_offsets_after_header(self):
        cls = ClassDef("P")
        a = cls.add_field(Field("a", INT))
        b = cls.add_field(Field("b", FLOAT))
        cls.layout()
        assert a.offset == HEADER_BYTES
        assert b.offset == HEADER_BYTES + WORD
        assert cls.instance_size == HEADER_BYTES + 2 * WORD

    def test_static_fields_take_no_instance_space(self):
        cls = ClassDef("S")
        cls.add_field(Field("shared", INT, is_static=True))
        inst = cls.add_field(Field("own", INT))
        cls.layout()
        assert inst.offset == HEADER_BYTES
        assert cls.instance_size == HEADER_BYTES + WORD

    def test_inherited_layout_extends_base(self):
        base = ClassDef("Base")
        base.add_field(Field("x", INT))
        derived = ClassDef("Derived", superclass=base)
        y = derived.add_field(Field("y", INT))
        derived.layout()
        assert y.offset == HEADER_BYTES + WORD
        assert derived.instance_size == HEADER_BYTES + 2 * WORD
        names = [f.name for f in derived.all_instance_fields()]
        assert names == ["x", "y"]

    def test_duplicate_field_rejected(self):
        cls = ClassDef("D")
        cls.add_field(Field("f", INT))
        with pytest.raises(VerifyError):
            cls.add_field(Field("f", INT))


class TestResolution:
    def build(self):
        program = Program()
        base = program.add_class(ClassDef("Base"))
        derived = program.add_class(ClassDef("Derived", superclass=base))
        base.add_field(Field("value", INT))
        method = Method("touch", base, [], INT)
        method.max_locals = 1
        base.add_method(method)
        return program, base, derived

    def test_method_resolution_walks_superclass(self):
        program, base, derived = self.build()
        found = program.resolve_method("Derived", "touch")
        assert found.owner is base

    def test_field_resolution_walks_superclass(self):
        program, base, derived = self.build()
        found = program.resolve_field("Derived", "value")
        assert found.owner is base

    def test_unknown_raises(self):
        program, *_ = self.build()
        with pytest.raises(VerifyError):
            program.resolve_method("Base", "missing")
        with pytest.raises(VerifyError):
            program.get_class("Nope")

    def test_is_subclass_of(self):
        program, base, derived = self.build()
        assert derived.is_subclass_of(base)
        assert not base.is_subclass_of(derived)

    def test_class_ids_assigned_and_stable(self):
        program, *_ = self.build()
        program.seal()
        ids = {cls.class_id for cls in program.classes.values()}
        assert len(ids) == 2 and 0 not in ids
        for cls in program.classes.values():
            assert program.class_by_id(cls.class_id) is cls

    def test_entry_discovery(self):
        program = Program()
        cls = program.add_class(ClassDef("App"))
        main = Method("main", cls, [], INT, is_static=True)
        main.max_locals = 0
        cls.add_method(main)
        assert program.entry() is main

    def test_entry_missing_raises(self):
        program = Program()
        program.add_class(ClassDef("Empty"))
        with pytest.raises(VerifyError):
            program.entry()

    def test_bytecode_size_counts_all_methods(self):
        from repro.bytecode import Instr, Op
        program, base, derived = self.build()
        method = program.resolve_method("Base", "touch")
        method.code = [Instr(Op.ICONST, 1), Instr(Op.RETURN_VALUE)]
        assert program.bytecode_size() == 2
