"""Property: adaptive recompilation never changes program semantics.

For every registered workload, the :meth:`Jrpm.run_adaptive` final
output must equal the reference interpreter oracle — including under
aggressive policy knobs that force decommits and lock escalations the
normal thresholds would never trigger.  Float outputs are compared with
the same tolerance :meth:`JrpmReport.outputs_match` uses (reductions
re-associate across CPUs).

The full 26-workload sweep (with forced-adaptation knobs) is marked
``slow`` like the one-shot equivalents in ``test_integration_suite``;
a fast representative subset runs in the default tier.
"""

import pytest

from repro.adapt import ThresholdPolicy
from repro.bytecode import run_program
from repro.core.pipeline import Jrpm, outputs_equal
from repro.hydra.config import HydraConfig
from repro.minijava import compile_source
from repro.workloads import lookup, names

#: representative fast subset: one integer, one floating, one multimedia
FAST_SUBSET = ("BitOps", "LuFactor", "decJpeg")


def _oracle_check(name, policy=None, epochs=3, config=None):
    program = compile_source(lookup(name).source("small"))
    oracle = run_program(program)
    jrpm = Jrpm(config=config)
    report = jrpm.run_adaptive(program, name=name, policy=policy,
                               epochs=epochs, verify=True)
    assert report.sequential.output == oracle.output
    assert outputs_equal(report.tls.output, oracle.output), (
        "%s: adaptive TLS output diverged from the interpreter oracle"
        % name)
    assert report.tls.return_value == oracle.return_value \
        or isinstance(oracle.return_value, float)
    assert report.outputs_match()
    return report


@pytest.mark.parametrize("name", FAST_SUBSET)
def test_adaptive_output_matches_oracle_fast(name):
    _oracle_check(name)


@pytest.mark.slow
@pytest.mark.parametrize("name", names())
def test_adaptive_output_matches_oracle(name):
    _oracle_check(name)


@pytest.mark.slow
@pytest.mark.parametrize("name", names())
def test_forced_decommit_preserves_output(name):
    """decommit_threshold no STL can meet: every loop reverts to
    sequential mid-run, and the program must still be right."""
    policy = ThresholdPolicy(decommit_threshold=1000.0, cooldown=1,
                             promote=True)
    report = _oracle_check(name, policy=policy, epochs=3)
    # the aggressive threshold really did force adaptation wherever
    # anything was selected at all
    if report.adaptation.epochs[0].plans:
        assert report.adaptation.applied_decisions()


@pytest.mark.slow
@pytest.mark.parametrize("name", FAST_SUBSET)
def test_forced_escalation_preserves_output(name):
    """violation_cutoff of zero lock-escalates on the first violation
    seen; synchronized execution must stay semantics-preserving."""
    policy = ThresholdPolicy(violation_cutoff=0.0, cooldown=1)
    _oracle_check(name, policy=policy, epochs=3)


@pytest.mark.parametrize("name", FAST_SUBSET[:1])
def test_forced_decommit_fast(name):
    policy = ThresholdPolicy(decommit_threshold=1000.0, promote=False)
    report = _oracle_check(name, policy=policy, epochs=3)
    assert not report.plans           # nothing survived the threshold


def test_permissive_admission_still_preserves_output():
    """The deliberately mispredicting configuration (everything looks
    profitable to TEST) must never trade correctness for speed."""
    config = HydraConfig(min_predicted_speedup=0.05,
                         min_iterations_per_entry=1.0)
    for name in FAST_SUBSET:
        _oracle_check(name, epochs=3, config=config)
