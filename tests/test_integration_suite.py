"""Slow integration tests: the full pipeline over the whole benchmark
suite (small size), checking sequential equivalence everywhere.

These mirror the benchmark harness but assert correctness rather than
performance shape; run with ``pytest -m slow`` (excluded by ``-m "not
slow"``).
"""

import pytest

from repro.bytecode import run_program
from repro.core.pipeline import Jrpm
from repro.minijava import compile_source
from repro.workloads import all_workloads, names


@pytest.mark.slow
@pytest.mark.parametrize("name", names())
def test_workload_pipeline_preserves_semantics(name):
    from repro.workloads import lookup
    program = compile_source(lookup(name).source("small"))
    oracle = run_program(program)
    report = Jrpm().run(program, name=name)
    assert report.sequential.output == oracle.output
    assert report.outputs_match(), (
        "%s: %r vs %r" % (name, report.tls.output, report.sequential.output))
    assert report.profiling_slowdown < 2.0
    assert report.tls_speedup > 0.5


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(
    w.name for w in all_workloads() if w.has_manual_variant))
def test_manual_variant_pipeline_preserves_semantics(name):
    from repro.workloads import lookup
    program = compile_source(lookup(name).manual_source("small"))
    oracle = run_program(program)
    report = Jrpm().run(program, name=name + "-manual")
    assert report.sequential.output == oracle.output
    assert report.outputs_match()


@pytest.mark.slow
def test_pipeline_deterministic():
    """Two identical pipeline runs agree bit-for-bit on everything."""
    from repro.workloads import lookup
    source = lookup("FourierTest").source("small")
    first = Jrpm().run(compile_source(source))
    second = Jrpm().run(compile_source(source))
    assert first.sequential.cycles == second.sequential.cycles
    assert first.tls.cycles == second.tls.cycles
    assert first.tls.output == second.tls.output
    assert sorted(first.plans) == sorted(second.plans)
