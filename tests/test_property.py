"""Property-based tests (hypothesis).

The heavyweight invariants of the system:

* the Hydra machine executing microJIT output matches the reference
  interpreter on arbitrary expression programs,
* the TLS pipeline preserves sequential semantics on randomized loop
  programs,
* 32-bit helpers agree with Java semantics,
* the cache model never lies about hits.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bytecode.instructions import f2i, i32, idiv, irem, u32
from repro.core.pipeline import Jrpm
from repro.hydra.cache import SetAssociativeCache
from repro.minijava import compile_source
from repro.bytecode import run_program

from conftest import machine_run, wrap_main

# ---------------------------------------------------------------------------
# 32-bit arithmetic helpers
# ---------------------------------------------------------------------------

ints = st.integers(min_value=-2**31, max_value=2**31 - 1)
wide = st.integers(min_value=-2**63, max_value=2**63)


@given(wide)
def test_i32_is_32bit_two_complement(x):
    value = i32(x)
    assert -2**31 <= value < 2**31
    assert (value - x) % 2**32 == 0


@given(ints)
def test_u32_roundtrip(x):
    assert i32(u32(x)) == x


@given(ints, ints.filter(lambda v: v != 0))
def test_idiv_irem_reconstruct(a, b):
    q, r = idiv(a, b), irem(a, b)
    assert i32(q * b + r) == a
    if a >= 0:
        assert r >= 0
    else:
        assert r <= 0


@given(st.floats(allow_nan=True, allow_infinity=True, width=32))
def test_f2i_always_in_range(x):
    assert -2**31 <= f2i(x) <= 2**31 - 1


# ---------------------------------------------------------------------------
# random expression programs: interpreter == machine
# ---------------------------------------------------------------------------

_INT_BINOPS = ["+", "-", "*", "&", "|", "^"]


def _expr(draw, depth):
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(-1000, 1000)))
        if choice == 1:
            return draw(st.sampled_from(["a", "b", "c"]))
        return str(draw(st.integers(-5, 5)))
    kind = draw(st.integers(0, 5))
    left = _expr(draw, depth - 1)
    right = _expr(draw, depth - 1)
    if kind == 0:
        op = draw(st.sampled_from(_INT_BINOPS))
        return "(%s %s %s)" % (left, op, right)
    if kind == 1:
        shift = draw(st.integers(0, 31))
        op = draw(st.sampled_from(["<<", ">>", ">>>"]))
        return "(%s %s %d)" % (left, op, shift)
    if kind == 2:
        divisor = draw(st.integers(1, 97))
        op = draw(st.sampled_from(["/", "%"]))
        return "(%s %s %d)" % (left, op, divisor)
    if kind == 3:
        return "(-(%s))" % left
    if kind == 4:
        return "(~(%s))" % left
    return "(%s < %s ? %s : %s)" % (left, right,
                                    _expr(draw, 0), _expr(draw, 0))


@st.composite
def expression_programs(draw):
    exprs = [_expr(draw, draw(st.integers(1, 3))) for __ in range(3)]
    a = draw(st.integers(-10000, 10000))
    b = draw(st.integers(-10000, 10000))
    c = draw(st.integers(-100, 100))
    body = "int a = %d; int b = %d; int c = %d;\n" % (a, b, c)
    for index, expr in enumerate(exprs):
        body += "int r%d = %s; Sys.printInt(r%d);\n" % (index, expr, index)
    body += "return r0 ^ r1 ^ r2;"
    return wrap_main(body)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(expression_programs())
def test_machine_matches_interpreter_on_random_expressions(src):
    program = compile_source(src)
    expected = run_program(program)
    actual = machine_run(src)
    assert actual.output == expected.output
    assert actual.return_value == expected.return_value


# ---------------------------------------------------------------------------
# random loop programs: TLS == sequential
# ---------------------------------------------------------------------------

@st.composite
def loop_programs(draw):
    n = draw(st.integers(40, 200))
    stride = draw(st.integers(1, 3))
    mul = draw(st.integers(2, 9))
    mask = draw(st.sampled_from(["0xFF", "0xFFF", "0xFFFF"]))
    carried = draw(st.booleans())
    uses_array_chain = draw(st.booleans())
    reduction_op = draw(st.sampled_from(["+", "^", "|"]))
    body = []
    body.append("a[i] = (i * %d + seed) %% 251;" % mul)
    if uses_array_chain:
        body.append("if (i > 0) { b[i] = (b[i-1] + a[i]) & %s; }" % mask)
    else:
        body.append("b[i] = (a[i] * 3) & %s;" % mask)
    if carried:
        body.append("seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;")
    body.append("acc = acc %s (a[i] + b[i]);" % reduction_op)
    src = wrap_main("""
        int n = %d;
        int[] a = new int[n];
        int[] b = new int[n];
        int seed = 99;
        int acc = 0;
        for (int i = 0; i < n; i += %d) {
            %s
        }
        Sys.printInt(acc);
        Sys.printInt(seed);
        Sys.printInt(b[n - 1]);
        return acc;
    """ % (n, stride, "\n            ".join(body)))
    return src


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(loop_programs())
def test_tls_pipeline_preserves_semantics_on_random_loops(src):
    program = compile_source(src)
    oracle = run_program(program)
    report = Jrpm().run(program)
    assert report.sequential.output == oracle.output
    assert report.outputs_match(), (
        "TLS diverged\nsrc=%s\nseq=%r\ntls=%r"
        % (src, report.sequential.output, report.tls.output))


# ---------------------------------------------------------------------------
# cache model
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=200),
       st.integers(1, 4))
def test_cache_hits_plus_misses_equals_lookups(lines, assoc):
    cache = SetAssociativeCache(32 * 8 * assoc, assoc)
    for line in lines:
        if not cache.lookup(line):
            cache.fill(line)
    assert cache.hits + cache.misses == len(lines)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=50))
def test_cache_hit_right_after_fill(lines):
    cache = SetAssociativeCache(2048, 4)
    for line in lines:
        cache.fill(line)
        assert cache.lookup(line)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 1000), ints), min_size=1,
                max_size=100))
def test_memory_last_write_wins(writes):
    from repro.hydra.memory import Memory
    memory = Memory()
    expected = {}
    for slot, value in writes:
        addr = slot * 4
        memory.store(addr, value)
        expected[addr] = value
    for addr, value in expected.items():
        assert memory.load(addr) == value
