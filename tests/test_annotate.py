"""TEST annotation pass: placement and candidate filtering."""

from repro.hydra.config import HydraConfig
from repro.jit.compiler import compile_annotated, compile_program
from repro.jit.ir import IROp
from repro.minijava import compile_source

from conftest import wrap_main


def annotated(src):
    return compile_annotated(compile_source(src), HydraConfig())


def ops_of(compiled, method="Main.main"):
    return [instr.op for instr in compiled.methods[method].code]


def test_simple_loop_gets_all_annotations():
    compiled = annotated(wrap_main("""
        int s = 0;
        for (int i = 0; i < 10; i++) { s += i; }
        return s;
    """))
    ops = ops_of(compiled)
    assert ops.count(IROp.SLOOP) == 1
    assert ops.count(IROp.EOI) == 1
    assert ops.count(IROp.ELOOP) >= 1
    assert len(compiled.loop_table) == 1


def test_loop_ids_are_unique_across_methods():
    compiled = annotated("""
class Main {
    static int work(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) { s += i; }
        return s;
    }
    static int main() {
        int t = 0;
        for (int i = 0; i < 5; i++) { t += work(i); }
        return t;
    }
}
""")
    ids = list(compiled.loop_table)
    assert len(ids) == len(set(ids)) == 2


def test_loop_with_print_is_rejected():
    compiled = annotated(wrap_main("""
        for (int i = 0; i < 3; i++) { Sys.printInt(i); }
        return 0;
    """))
    metas = list(compiled.loop_table.values())
    assert len(metas) == 1
    assert not metas[0].candidate
    assert "system call" in metas[0].reject_reason


def test_loop_with_early_return_is_still_a_candidate():
    # A `return` inside the loop body cannot reach the backedge, so the
    # returning block is outside the natural loop: the loop has a side
    # exit and remains decomposable (the master runs the return).
    compiled = annotated(wrap_main("""
        for (int i = 0; i < 10; i++) {
            if (i == 5) { return i; }
        }
        return -1;
    """))
    metas = list(compiled.loop_table.values())
    assert len(metas) == 1
    assert metas[0].candidate


def test_rejected_loop_gets_no_annotations():
    compiled = annotated(wrap_main("""
        for (int i = 0; i < 3; i++) { Sys.printInt(i); }
        return 0;
    """))
    ops = ops_of(compiled)
    assert IROp.SLOOP not in ops


def test_general_carried_local_gets_lwl_swl():
    compiled = annotated(wrap_main("""
        int x = 1;
        for (int i = 0; i < 10; i++) { x = x * 3 + 1; }
        return x;
    """))
    ops = ops_of(compiled)
    assert IROp.LWL in ops
    assert IROp.SWL in ops


def test_inductor_and_reduction_not_annotated():
    compiled = annotated(wrap_main("""
        int s = 0;
        for (int i = 0; i < 10; i++) { s += i; }
        return s;
    """))
    ops = ops_of(compiled)
    # i is an inductor, s a reduction: no lwl/swl should remain.
    assert IROp.LWL not in ops
    assert IROp.SWL not in ops


def test_nested_loops_have_parent_ids():
    compiled = annotated(wrap_main("""
        int s = 0;
        for (int i = 0; i < 4; i++) {
            for (int j = 0; j < 4; j++) { s += i * j; }
        }
        return s;
    """))
    metas = sorted(compiled.loop_table.values(), key=lambda m: m.depth)
    assert metas[0].depth == 1 and metas[0].parent_id is None
    assert metas[1].depth == 2 and metas[1].parent_id == metas[0].loop_id


def test_annotated_code_runs_identically():
    from conftest import interp, machine_run
    src = wrap_main("""
        int s = 0;
        int x = 2;
        for (int i = 0; i < 20; i++) {
            x = (x * 5 + 3) % 97;
            s += x;
        }
        Sys.printInt(s);
        return s;
    """)
    expected = interp(src)
    actual = machine_run(src, annotated=True)
    assert actual.output == expected.output


def test_annotation_count_reported():
    from repro.jit.compiler import annotation_count
    compiled = annotated(wrap_main("""
        int s = 0;
        for (int i = 0; i < 4; i++) { s += i; }
        return s;
    """))
    assert annotation_count(compiled) >= 3


def test_plain_compile_has_no_annotations():
    compiled = compile_program(compile_source(wrap_main("""
        int s = 0;
        for (int i = 0; i < 4; i++) { s += i; }
        return s;
    """)), HydraConfig())
    ops = ops_of(compiled)
    assert IROp.SLOOP not in ops and IROp.EOI not in ops
    assert compiled.loop_table == {}
