"""Docstring coverage gate for the documented-API packages.

`repro.analysis`, `repro.service`, `repro.profdb` and `repro.metrics`
are the packages whose docs pages promise a stable, navigable API —
every public module, class, function and method in them must say what
it is for.  Private names (leading underscore) and inherited/imported
members are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

PACKAGES = ("repro.analysis", "repro.service", "repro.profdb",
            "repro.metrics")


def public_modules():
    found = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        found.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            if not info.name.startswith("_"):
                found.append("%s.%s" % (package_name, info.name))
    return found


def _own_members(owner, module_name):
    """(name, member) pairs defined here — not imported, not dunder."""
    for name, member in vars(owner).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", None) == module_name:
                yield name, member


@pytest.mark.parametrize("module_name", public_modules())
def test_module_and_members_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    if not inspect.getdoc(module):
        missing.append(module_name)
    for name, member in _own_members(module, module_name):
        if not inspect.getdoc(member):
            missing.append("%s.%s" % (module_name, name))
        if inspect.isclass(member):
            for attr, value in vars(member).items():
                if attr.startswith("_") and attr != "__init__":
                    continue
                if not (inspect.isfunction(value)
                        or isinstance(value, (staticmethod,
                                              classmethod, property))):
                    continue
                target = (value.__func__
                          if isinstance(value, (staticmethod,
                                                classmethod))
                          else value.fget
                          if isinstance(value, property) else value)
                if attr == "__init__":
                    # an undocumented __init__ is fine when the class
                    # docstring carries the construction contract
                    continue
                if target is not None and not inspect.getdoc(target):
                    missing.append("%s.%s.%s"
                                   % (module_name, name, attr))
    assert not missing, ("public names without docstrings:\n  "
                         + "\n  ".join(missing))
