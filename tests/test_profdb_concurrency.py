"""Two-process stress tests for the shared on-disk stores.

Both the report cache and the profile DB are designed to be shared by
concurrent workers (suite processes, daemon workers, parallel bench
scripts).  The cache relies on atomic tempfile+rename publishes and
corrupt-entry eviction; the profile DB additionally serializes its
read-merge-write cycle behind an ``fcntl`` file lock so that no
recorded run is ever lost to a lost-update race.  These tests spawn
real OS processes hammering one shared file and then check the
invariants that matter: every write is accounted for, the final file is
valid, and a reader racing a writer never sees a torn payload.
"""

import json
import multiprocessing
import os

import pytest

from repro import Jrpm, compile_source
from repro.profdb import ProfileDb, validate_profdb_dict
from repro.runner.cache import ReportCache

SOURCE = """
class Main {
    static int main() {
        int sum = 0;
        int i = 0;
        while (i < 2000) {
            sum = sum + i * 3 - (i / 2);
            i = i + 1;
        }
        Sys.printInt(sum);
        return sum;
    }
}
"""

RECORDS_PER_PROCESS = 12
PROCESSES = 2


def _record_worker(db_path, count, barrier):
    """Run one cold pipeline, then fold the report into the shared DB
    *count* times, racing the sibling process byte-for-byte."""
    jrpm = Jrpm()
    program = compile_source(SOURCE)
    report = jrpm.run(program, name="stress")
    db = ProfileDb(db_path)
    barrier.wait()
    for _ in range(count):
        db.record(program, report, (), jrpm.config, jrpm.stl_options,
                  jrpm.vm_options)


def _cache_worker(root, keys, payload, rounds, barrier):
    """Re-publish every key *rounds* times against a racing sibling."""
    cache = ReportCache(root)
    barrier.wait()
    for _ in range(rounds):
        for key in keys:
            cache.put(key, payload)
            got = cache.get(key)
            # a racing reader must see a whole payload or a miss --
            # never a torn one (atomic rename guarantees this)
            assert got is None or got == payload


def _spawn(target, args):
    ctx = multiprocessing.get_context("fork")
    procs = [ctx.Process(target=target, args=args)
             for _ in range(PROCESSES)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    for proc in procs:
        assert proc.exitcode == 0
    return procs


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
def test_concurrent_profdb_writers_lose_no_records(tmp_path):
    db_path = str(tmp_path / "profdb.json")
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(PROCESSES)
    _spawn(_record_worker, (db_path, RECORDS_PER_PROCESS, barrier))
    db = ProfileDb(db_path)
    payload = db.export()
    # the file lock serializes read-merge-write: no update is lost
    assert validate_profdb_dict(payload) == []
    stats = db.stats_dict()
    assert stats["programs"] == 1
    assert stats["runs"] == PROCESSES * RECORDS_PER_PROCESS
    # identical runs merge to a fixed point: one consensus input entry
    assert stats["inputs"] == 1


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
def test_concurrent_cache_writers_never_tear(tmp_path):
    root = str(tmp_path / "cache")
    payload = {"report": {"name": "x", "cycles": [1] * 2048}}
    keys = ["k%d" % i for i in range(8)]
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(PROCESSES)
    _spawn(_cache_worker, (root, keys, payload, 40, barrier))
    cache = ReportCache(root)
    for key in keys:
        assert cache.get(key) == payload
    # no leaked tempfiles from the racing publishes
    leftovers = [name for name in os.listdir(root)
                 if name.endswith(".tmp")]
    assert leftovers == []


def test_truncated_cache_entry_reads_as_miss(tmp_path):
    cache = ReportCache(str(tmp_path / "cache"))
    cache.put("key", {"a": 1})
    path = cache.path_for("key")
    with open(path) as fh:
        text = fh.read()
    with open(path, "w") as fh:
        fh.write(text[: len(text) // 2])
    assert cache.get("key") is None
    # the corrupt entry was evicted, not left to fail forever
    assert not os.path.exists(path)
    cache.put("key", {"a": 1})
    assert cache.get("key") == {"a": 1}


def test_truncated_profdb_recovers_on_next_record(tmp_path):
    db_path = str(tmp_path / "profdb.json")
    jrpm = Jrpm()
    program = compile_source(SOURCE)
    report = jrpm.run(program, name="stress")
    db = ProfileDb(db_path)
    db.record(program, report, (), jrpm.config, jrpm.stl_options,
              jrpm.vm_options)
    with open(db_path) as fh:
        text = fh.read()
    with open(db_path, "w") as fh:
        fh.write(text[: len(text) // 2])
    assert db.stats_dict()["programs"] == 0
    db.record(program, report, (), jrpm.config, jrpm.stl_options,
              jrpm.vm_options)
    payload = db.export()
    assert validate_profdb_dict(payload) == []
    assert db.stats_dict()["runs"] == 1
