"""Unit tests for the MiniJava parser."""

import pytest

from repro.errors import CompileError
from repro.minijava import ast_nodes as ast
from repro.minijava.parser import parse


def parse_main(body):
    decl = parse("class Main { static int main() { %s } }" % body)
    return decl.classes[0].methods[0].body.statements


def parse_expr(text):
    stmts = parse_main("int q = %s;" % text)
    return stmts[0].init


def test_empty_class():
    decl = parse("class A { }")
    assert decl.classes[0].name == "A"
    assert decl.classes[0].superclass is None


def test_extends():
    decl = parse("class A extends B { }")
    assert decl.classes[0].superclass == "B"


def test_field_declarations():
    decl = parse("class A { int x; static float y; int a, b; }")
    fields = decl.classes[0].fields
    names = [f.name for f in fields]
    assert names == ["x", "y", "a", "b"]
    assert fields[1].is_static and fields[1].type.is_float()


def test_method_signature():
    decl = parse("class A { static int f(int a, float[] b) { return 0; } }")
    method = decl.classes[0].methods[0]
    assert method.is_static
    assert method.params[0][0] == "a"
    assert method.params[1][1].dims == 1


def test_constructor():
    decl = parse("class A { A(int x) { } }")
    method = decl.classes[0].methods[0]
    assert method.is_constructor and method.name == "<init>"


def test_synchronized_method():
    decl = parse("class A { synchronized void f() { } }")
    assert decl.classes[0].methods[0].is_synchronized


def test_precedence_mul_over_add():
    expr = parse_expr("1 + 2 * 3")
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"


def test_precedence_shift_vs_compare():
    expr = parse_expr("(a >> 2 < b) ? 1 : 0")
    assert isinstance(expr, ast.Ternary)
    assert expr.cond.op == "<"
    assert expr.cond.left.op == ">>"


def test_logical_precedence():
    expr = parse_expr("(a == 1 || b == 2 && c == 3) ? 1 : 0")
    assert expr.cond.op == "||"
    assert expr.cond.right.op == "&&"


def test_unary_chain():
    expr = parse_expr("-~x")
    assert isinstance(expr, ast.Unary) and expr.op == "-"
    assert isinstance(expr.operand, ast.Unary) and expr.operand.op == "~"


def test_cast_parses():
    expr = parse_expr("(int) 3.5")
    assert isinstance(expr, ast.Cast) and expr.type.is_int()


def test_parenthesized_expression_not_cast():
    expr = parse_expr("(x) + 1")
    assert isinstance(expr, ast.Binary)


def test_array_index_and_field_chain():
    expr = parse_expr("a.b[1].c")
    assert isinstance(expr, ast.FieldAccess)
    assert isinstance(expr.target, ast.Index)


def test_array_length():
    expr = parse_expr("a.length")
    assert isinstance(expr, ast.ArrayLength)


def test_method_call_chain():
    expr = parse_expr("obj.f(1).g(2, 3)")
    assert isinstance(expr, ast.Call) and expr.name == "g"
    assert len(expr.args) == 2
    assert isinstance(expr.target, ast.Call)


def test_new_object():
    expr = parse_expr("new Point(1, 2)")
    assert isinstance(expr, ast.New) and expr.class_name == "Point"


def test_new_array_one_dim():
    expr = parse_expr("new int[10]")
    assert isinstance(expr, ast.NewArray)
    assert len(expr.lengths) == 1


def test_new_array_two_dims():
    expr = parse_expr("new float[4][8]")
    assert isinstance(expr, ast.NewArray)
    assert len(expr.lengths) == 2


def test_compound_assignment_rewrites_op():
    stmts = parse_main("int x = 0; x += 5;")
    assign = stmts[1].expr
    assert isinstance(assign, ast.Assign) and assign.op == "+"


def test_postfix_and_prefix_incdec():
    stmts = parse_main("int x = 0; x++; ++x;")
    assert stmts[1].expr.is_prefix is False
    assert stmts[2].expr.is_prefix is True


def test_for_loop_pieces():
    stmts = parse_main("for (int i = 0; i < 3; i++) { }")
    loop = stmts[0]
    assert isinstance(loop, ast.For)
    assert loop.init is not None and loop.cond is not None
    assert loop.update is not None


def test_for_loop_empty_clauses():
    stmts = parse_main("for (;;) { break; }")
    loop = stmts[0]
    assert loop.init is None and loop.cond is None and loop.update is None


def test_do_while():
    stmts = parse_main("int i = 0; do { i++; } while (i < 3);")
    assert isinstance(stmts[1], ast.DoWhile)


def test_dangling_else_binds_inner():
    stmts = parse_main("if (a) if (b) c = 1; else c = 2;")
    outer = stmts[0]
    assert outer.otherwise is None
    assert outer.then.otherwise is not None


def test_invalid_assignment_target():
    with pytest.raises(CompileError):
        parse_main("1 = 2;")


def test_missing_semicolon():
    with pytest.raises(CompileError):
        parse_main("int x = 1")


def test_ternary_right_associative():
    expr = parse_expr("a ? 1 : b ? 2 : 3")
    assert isinstance(expr.otherwise, ast.Ternary)
