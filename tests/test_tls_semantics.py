"""TLS runtime mechanics: violations, sync locks, overflow stalls,
commits, exceptions, hoisting and the state breakdown (paper §2, §4)."""

import pytest

from repro.core.pipeline import Jrpm
from repro.errors import ArrayIndexException
from repro.hydra.config import HydraConfig, SpeculationOverheads
from repro.jit.stl import StlOptions
from repro.minijava import compile_source

from conftest import wrap_main


def pipeline(src, config=None, **kwargs):
    return Jrpm(config=config, **kwargs).run(compile_source(src))


PARALLEL = wrap_main("""
    int[] a = new int[800];
    for (int i = 0; i < 800; i++) { a[i] = i * 7 % 51; }
    int s = 0;
    for (int i = 0; i < 800; i++) { s += a[i]; }
    Sys.printInt(s);
    return s;
""")

SERIAL_HEAP = wrap_main("""
    int[] b = new int[500];
    b[0] = 1;
    int t = 0;
    for (int i = 1; i < 500; i++) {
        b[i] = b[i-1] * 3 + 1;
        t ^= b[i] & 255;
    }
    Sys.printInt(t);
    return t;
""")


def test_commits_match_iterations():
    report = pipeline(PARALLEL)
    assert report.breakdown.commits >= 1600    # both loops selected


def test_no_violations_on_independent_loops():
    report = pipeline(PARALLEL)
    assert report.breakdown.violations == 0


def test_run_used_dominates_for_parallel_code():
    report = pipeline(PARALLEL)
    fractions = report.breakdown.fractions()
    assert fractions["run_used"] > 0.5


def test_violations_when_serial_loop_forced():
    # Force selection by bypassing the selector's own prediction: drop
    # the speedup threshold so the serial loop is admitted.
    config = HydraConfig(min_predicted_speedup=0.0)
    report = pipeline(SERIAL_HEAP, config=config)
    if any(not p.multilevel_inner for p in report.plans.values()):
        assert report.outputs_match()
        assert (report.breakdown.violations > 50
                or report.breakdown.lock_waits > 0)


def test_sync_lock_removes_violations():
    src = wrap_main("""
        int seed = 3;
        int acc = 0;
        for (int i = 0; i < 700; i++) {
            seed = (seed * 48271 + 11) & 0x7FFFFFFF;
            int w = seed % 64;
            int v = (w * w + w) % 101;
            acc = (acc + v) & 0xFFFF;
        }
        Sys.printInt(acc);
        Sys.printInt(seed);
        return acc;
    """)
    with_sync = pipeline(src)
    without = pipeline(src, stl_options=StlOptions(sync_locks=False))
    assert with_sync.outputs_match() and without.outputs_match()
    assert with_sync.breakdown.violations < without.breakdown.violations
    assert with_sync.tls.cycles <= without.tls.cycles


def test_overflow_stall_with_tiny_buffers():
    config = HydraConfig(load_buffer_lines=2, store_buffer_lines=2,
                         max_overflow_frequency=2.0,
                         min_predicted_speedup=0.0)
    # Every iteration writes 6 distinct cache lines (stride 8 words =
    # one 32B line), exceeding the 2-line store buffer.
    src = wrap_main("""
        int[] a = new int[8000];
        int s = 0;
        for (int i = 0; i < 120; i++) {
            int b = i * 48;
            a[b] = i; a[b + 8] = i + 1; a[b + 16] = i + 2;
            a[b + 24] = i + 3; a[b + 32] = i + 4; a[b + 40] = i + 5;
            s += a[b];
        }
        Sys.printInt(s);
        return s;
    """)
    report = pipeline(src, config=config)
    assert report.outputs_match()
    if report.plans:
        assert report.breakdown.overflow_stalls > 0
        assert report.breakdown.wait_used > 0


def test_exception_in_speculative_region_is_deferred_and_real():
    src = wrap_main("""
        int[] a = new int[100];
        int n = 200;     // out of bounds at i == 100
        int s = 0;
        for (int i = 0; i < n; i++) {
            s += a[i] + i;
        }
        Sys.printInt(s);
        return s;
    """)
    program = compile_source(src)
    report = Jrpm().run(program)
    # Sequential and speculative runs must fail identically.
    assert report.sequential.guest_exception is not None
    assert report.tls.guest_exception is not None
    assert (report.tls.guest_exception.kind
            == report.sequential.guest_exception.kind
            == "ArrayIndexOutOfBoundsException")


def test_state_breakdown_adds_up():
    report = pipeline(PARALLEL)
    breakdown = report.breakdown
    total = breakdown.total
    assert total > 0
    fractions = breakdown.fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


def test_old_handlers_are_slower():
    config_new = HydraConfig()
    config_old = HydraConfig(overheads=SpeculationOverheads.old_handlers())
    new = pipeline(PARALLEL, config=config_new)
    old = pipeline(PARALLEL, config=config_old)
    assert new.outputs_match() and old.outputs_match()
    assert old.tls.cycles > new.tls.cycles
    assert old.breakdown.overhead > new.breakdown.overhead


def test_hoisting_reduces_total_time():
    src = wrap_main("""
        int[][] m = new int[60][40];
        int t = 0;
        for (int i = 0; i < 60; i++) {
            for (int j = 0; j < 40; j++) {
                m[i][j] = i * j + 1;
                t += m[i][j] & 3;
            }
        }
        Sys.printInt(t);
        return t;
    """)
    hoisted = pipeline(src)
    flat = pipeline(src, stl_options=StlOptions(hoisting=False))
    assert hoisted.outputs_match() and flat.outputs_match()
    # Hoisting can only help when an inner loop was selected; in either
    # case it must never hurt by more than noise.
    assert hoisted.tls.cycles <= flat.tls.cycles * 1.02


def test_more_cpus_speed_up_parallel_loop():
    two = pipeline(PARALLEL, config=HydraConfig(num_cpus=2))
    four = pipeline(PARALLEL, config=HydraConfig(num_cpus=4))
    eight = pipeline(PARALLEL, config=HydraConfig(num_cpus=8))
    assert two.outputs_match() and four.outputs_match() \
        and eight.outputs_match()
    assert two.tls.cycles > four.tls.cycles > eight.tls.cycles
    assert eight.tls_speedup > 4.0


def test_multilevel_switch_correct():
    src = wrap_main("""
        int[] data = new int[4000];
        int t = 0;
        for (int f = 0; f < 160; f++) {
            t += (f * 13) % 7;
            if ((f & 31) == 0) {
                // rare heavyweight inner loop
                for (int k = 0; k < 200; k++) {
                    data[k] = data[k] + f + k;
                }
            }
        }
        int s = 0;
        for (int k = 0; k < 200; k++) { s += data[k]; }
        Sys.printInt(t);
        Sys.printInt(s);
        return t;
    """)
    report = pipeline(src)
    assert report.outputs_match()


def test_reduction_merge_order_independent_for_ints():
    src = wrap_main("""
        int parity = 0;
        int total = 0;
        for (int i = 0; i < 1000; i++) {
            parity ^= (i * 2654435761) & 0xFFFF;
            total += i;
        }
        Sys.printInt(parity);
        Sys.printInt(total);
        return total;
    """)
    report = pipeline(src)
    assert report.outputs_match()
    assert report.tls_speedup > 2.0
