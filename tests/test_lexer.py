"""Unit tests for the MiniJava tokenizer."""

import pytest

from repro.errors import CompileError
from repro.minijava.lexer import tokenize


def kinds(src):
    return [(t.kind, t.value) for t in tokenize(src)[:-1]]


def test_keywords_vs_identifiers():
    toks = kinds("class Foo extends Bar")
    assert toks == [("kw", "class"), ("id", "Foo"), ("kw", "extends"),
                    ("id", "Bar")]


def test_identifier_with_underscore_and_digits():
    assert kinds("_x9 y_1") == [("id", "_x9"), ("id", "y_1")]


def test_int_literal():
    assert kinds("42") == [("int", 42)]


def test_hex_literal():
    assert kinds("0x7FFFFFFF") == [("int", 0x7FFFFFFF)]
    assert kinds("0xff") == [("int", 255)]


def test_float_literal():
    assert kinds("3.25") == [("float", 3.25)]


def test_float_exponent():
    assert kinds("1e3 2.5e-2") == [("float", 1000.0), ("float", 0.025)]


def test_float_f_suffix():
    assert kinds("1.5f") == [("float", 1.5)]


def test_leading_dot_float():
    assert kinds(".5") == [("float", 0.5)]


def test_line_comment():
    assert kinds("a // comment\n b") == [("id", "a"), ("id", "b")]


def test_block_comment():
    assert kinds("a /* x\ny */ b") == [("id", "a"), ("id", "b")]


def test_unterminated_block_comment():
    with pytest.raises(CompileError):
        tokenize("a /* never closed")


def test_multichar_operators_longest_match():
    ops = [v for k, v in kinds("a >>> b >> c >= d > e")]
    assert ops == ["a", ">>>", "b", ">>", "c", ">=", "d", ">", "e"]


def test_compound_assignment_operators():
    ops = [v for __, v in kinds("+= -= *= /= %= &= |= ^= <<= >>= >>>=")]
    assert ops == ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                   "<<=", ">>=", ">>>="]


def test_increment_decrement():
    assert [v for __, v in kinds("++ --")] == ["++", "--"]


def test_line_numbers():
    toks = tokenize("a\nb\n\nc")
    lines = [t.line for t in toks[:-1]]
    assert lines == [1, 2, 4]


def test_unexpected_character():
    with pytest.raises(CompileError):
        tokenize("a $ b")


def test_eof_token():
    toks = tokenize("x")
    assert toks[-1].kind == "eof"


def test_boolean_literals_are_keywords():
    assert kinds("true false null this") == [
        ("kw", "true"), ("kw", "false"), ("kw", "null"), ("kw", "this")]
