"""Smoke tests: every example script runs end to end."""

import importlib.util
import os
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name):
    path = os.path.join(EXAMPLES, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "TLS speedup" in out
    assert "outputs match: OK" in out


def test_loop_selection_tour_runs(capsys):
    module = load_example("loop_selection_tour")
    module.main()
    out = capsys.readouterr().out
    assert "SELECTED" in out
    assert "rejected" in out


def test_run_benchmark_lists(capsys):
    module = load_example("run_benchmark")
    module.list_benchmarks()
    out = capsys.readouterr().out
    assert "monteCarlo" in out and "shallow" in out


@pytest.mark.slow
def test_optimization_playground_runs(capsys):
    module = load_example("optimization_playground")
    module.main()
    out = capsys.readouterr().out
    assert "Reduction operators" in out


@pytest.mark.slow
def test_custom_hardware_runs(capsys):
    module = load_example("custom_hardware")
    module.main()
    out = capsys.readouterr().out
    assert "8-CPU future CMP" in out
