"""ComparatorBank mechanics at the unit level (paper §3.2)."""

from repro.hydra.config import HydraConfig
from repro.tracer.profiler import ComparatorBank, TestProfiler


class _Instance:
    loop_id = 1
    instance_id = 1
    bank = None


def make_bank(now=0, history=8):
    return ComparatorBank(_Instance(), now, history)


class TestArcDistance:
    def test_intra_thread_is_zero(self):
        bank = make_bank(now=100)
        assert bank.arc_distance(150) == 0

    def test_previous_thread_is_one(self):
        bank = make_bank(now=0)
        bank.boundary(100)      # thread 0 was [0, 100)
        assert bank.arc_distance(50) == 1

    def test_distance_counts_boundaries(self):
        bank = make_bank(now=0)
        for t in (100, 200, 300):
            bank.boundary(t)
        # current thread started at 300
        assert bank.arc_distance(250) == 1
        assert bank.arc_distance(150) == 2
        assert bank.arc_distance(50) == 3

    def test_older_than_ring_is_none(self):
        bank = make_bank(now=0, history=2)
        for t in (10, 20, 30, 40):
            bank.boundary(t)
        assert bank.arc_distance(5) is None

    def test_producer_start_lookup(self):
        bank = make_bank(now=0)
        bank.boundary(100)
        bank.boundary(250)
        assert bank.producer_start(1) == 100
        assert bank.producer_start(2) == 0


class TestBoundary:
    def test_boundary_returns_thread_facts(self):
        bank = make_bank(now=0)
        bank.load_lines.update({1, 2, 3})
        bank.store_lines.add(9)
        bank.critical = 42.0
        size, loads, stores, critical, arc = bank.boundary(77)
        assert size == 77
        assert loads == 3 and stores == 1
        assert critical == 42.0

    def test_boundary_resets_per_thread_state(self):
        bank = make_bank(now=0)
        bank.load_lines.add(5)
        bank.critical = 9.0
        bank.boundary(10)
        assert not bank.load_lines
        assert bank.critical == 0.0
        assert bank.thread_index == 1


class TestProfilerEventPlumbing:
    def make(self):
        return TestProfiler(HydraConfig())

    def test_eoi_without_sloop_ignored(self):
        profiler = self.make()
        profiler.on_eoi(7, 100)             # never started: no crash
        assert 7 not in profiler.stats or \
            profiler.stats[7].threads == 0

    def test_nested_instances_resolve_to_nearest(self):
        profiler = self.make()
        profiler.on_sloop(1, 0, 0)
        profiler.on_sloop(1, 0, 10)          # recursive same-loop entry
        inner = profiler.active[-1]
        profiler.on_eloop(1, 50)
        # the inner (nearest) activation is the one removed
        assert all(a is not inner for a in profiler.active)
        assert len(profiler.active) == 1

    def test_store_then_load_same_thread_no_arc(self):
        profiler = self.make()
        profiler.on_sloop(1, 0, 0)
        profiler.on_store(0x400000, 5, None)
        profiler.on_load(0x400000, 8, None)
        profiler.on_eoi(1, 10)
        profiler.on_eloop(1, 12)
        assert profiler.stats[1].arc_threads == 0

    def test_store_then_load_next_thread_records_arc(self):
        profiler = self.make()
        profiler.on_sloop(1, 0, 0)
        profiler.on_store(0x400000, 5, None)
        profiler.on_eoi(1, 10)
        profiler.on_load(0x400000, 12, None)
        profiler.on_eoi(1, 20)
        profiler.on_eloop(1, 22)
        stats = profiler.stats[1]
        assert stats.arc_threads == 1
        assert stats.avg_critical_constraint > 0

    def test_store_before_loop_entry_is_not_an_arc(self):
        profiler = self.make()
        profiler.on_store(0x400000, 1, None)     # before any loop
        profiler.on_sloop(1, 0, 10)
        profiler.on_load(0x400000, 12, None)
        profiler.on_eoi(1, 20)
        profiler.on_eloop(1, 22)
        assert profiler.stats[1].arc_threads == 0

    def test_local_slot_arcs(self):
        profiler = self.make()
        profiler.on_sloop(1, 1, 0)
        profiler.on_swl(1, 0, 5, None)
        profiler.on_eoi(1, 10)
        profiler.on_lwl(1, 0, 12, None)
        profiler.on_eoi(1, 20)
        profiler.on_eloop(1, 21)
        stats = profiler.stats[1]
        assert stats.arc_threads == 1
        dominant = stats.dominant_arc()
        assert dominant is not None
        (store_site, load_site), __ = dominant
        assert load_site == ("local", 1, 0)

    def test_line_counting_per_thread(self):
        profiler = self.make()
        profiler.on_sloop(1, 0, 0)
        for k in range(4):
            profiler.on_load(0x400000 + 32 * k, 2 + k, None)
        profiler.on_eoi(1, 50)
        profiler.on_eloop(1, 60)
        assert profiler.stats[1].max_load_lines == 4

    def test_banks_freed_on_eloop(self):
        profiler = self.make()
        for loop_id in range(1, 6):
            profiler.on_sloop(loop_id, 0, loop_id)
        assert profiler.banks_in_use == 5
        for loop_id in range(5, 0, -1):
            profiler.on_eloop(loop_id, 100 + loop_id)
        assert profiler.banks_in_use == 0
        assert not profiler.active
