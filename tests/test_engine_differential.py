"""Differential oracle: predecoded fastpath engine vs legacy dispatch.

The tentpole invariant of ``repro.engine`` is **cycle exactness**: for
any guest program, the predecoded table-dispatch engine and the legacy
``if/elif`` interpreters must agree on *every* observable —

* printed output, return value and guest-exception behaviour,
* ``instret`` (simulated instruction count) and total simulated cycles,
* cache hit/miss counters of every level (the memory-hierarchy memo
  fast path must be counter-exact),
* per-STL TLS statistics: commits, violations, squashes, restarts and
  the cycle breakdown (the stepwise TLS tables must preserve the
  smallest-clock interleaving bit-for-bit),
* the full serialized pipeline report.

This file enforces that over randomized MiniJava workloads at three
levels: bare machine runs, the reference bytecode interpreter, and the
whole Jrpm pipeline (profile → select → TLS).  A small subset runs in
the default tier; the ~20-workload sweep is marked ``slow``.
"""

import json
import random

import pytest

from repro.bytecode import run_program
from repro.core.pipeline import Jrpm
from repro.hydra.config import HydraConfig
from repro.hydra.machine import Machine
from repro.jit.compiler import compile_program
from repro.minijava import compile_source

from conftest import wrap_main


# ---------------------------------------------------------------------------
# randomized workload generator (deterministic per seed)
# ---------------------------------------------------------------------------

def random_workload(seed):
    """A randomized MiniJava program exercising the engine's hot paths:
    fused ALU runs, compare+branch idioms, array traffic, float math,
    calls/virtual dispatch, and loop shapes the STL selector likes
    (including loop-carried dependences that trigger TLS violations)."""
    rng = random.Random(seed)
    n = rng.randrange(48, 160)
    mul = rng.randrange(2, 11)
    mask = rng.choice(["0xFF", "0xFFF", "0xFFFF"])
    shift = rng.randrange(1, 5)
    carried = rng.random() < 0.5
    chain = rng.random() < 0.4
    use_float = rng.random() < 0.6
    use_call = rng.random() < 0.5
    use_object = rng.random() < 0.4
    red_op = rng.choice(["+", "^", "|", "-"])

    prelude = []
    if use_call:
        prelude.append(
            "static int mix(int x, int y) {"
            " return ((x * %d) ^ (y >> %d)) & %s; }"
            % (rng.randrange(3, 17), shift, mask))
    if use_object:
        prelude.append(
            "static int bump(Acc acc, int v) {"
            " acc.total = (acc.total + v) & 0x7FFFFFFF;"
            " return acc.total; }")

    body = []
    body.append("int n = %d;" % n)
    body.append("int[] a = new int[n];")
    body.append("int[] b = new int[n];")
    body.append("int seed = %d;" % rng.randrange(1, 1000))
    body.append("int acc = 0;")
    if use_float:
        body.append("float f = %d.5;" % rng.randrange(0, 9))
    if use_object:
        body.append("Acc box = new Acc();")
    body.append("for (int i = 0; i < n; i++) {")
    body.append("    a[i] = (i * %d + seed) %% 251;" % mul)
    if chain:
        body.append("    if (i > 0) {"
                    " b[i] = (b[i-1] + a[i]) & %s; }" % mask)
    else:
        body.append("    b[i] = (a[i] << %d) & %s;" % (shift, mask))
    if carried:
        body.append("    seed = (seed * 1103515245 + 12345)"
                    " & 0x7FFFFFFF;")
    if use_call:
        body.append("    acc = acc %s Main.mix(a[i], b[i]);" % red_op)
    else:
        body.append("    acc = acc %s (a[i] + b[i]);" % red_op)
    if use_float:
        body.append("    f = f * 1.0001 + a[i] / 7;")
    if use_object:
        body.append("    acc = acc ^ Main.bump(box, b[i]);")
    body.append("}")
    if use_float:
        body.append("Sys.printInt((int) f);")
    body.append("Sys.printInt(acc);")
    body.append("Sys.printInt(seed);")
    body.append("Sys.printInt(b[n - 1]);")
    body.append("return acc;")

    src = wrap_main("\n        ".join(body),
                    prelude="\n    ".join(prelude))
    if use_object:
        src += "\nclass Acc { int total; }\n"
    return src


# ---------------------------------------------------------------------------
# observables at each level
# ---------------------------------------------------------------------------

def machine_observables(program, fastpath):
    config = HydraConfig(fastpath=fastpath)
    compiled = compile_program(program, config)
    machine = Machine(compiled, config)
    result = machine.run()
    return {
        "return_value": result.return_value,
        "output": list(result.output),
        "instret": result.instructions,
        "cycles": result.cycles,
        "cache": machine.hierarchy.counters(),
        "exception": repr(result.guest_exception),
    }


def interpreter_observables(program, fastpath):
    result = run_program(program, fastpath=fastpath)
    return {
        "return_value": result.return_value,
        "output": list(result.output),
        "instructions": result.instructions,
    }


def pipeline_observables(source, fastpath):
    """Canonical JSON of the full pipeline report, minus the config
    (whose ``fastpath`` field differs by construction)."""
    report = Jrpm(config=HydraConfig(fastpath=fastpath)).run(source)
    payload = report.to_dict()
    payload.pop("config", None)
    return json.dumps(payload, sort_keys=True, default=str)


def assert_identical(seed, pipeline=False):
    source = random_workload(seed)
    program = compile_source(source)
    fast = machine_observables(program, True)
    legacy = machine_observables(program, False)
    assert fast == legacy, (
        "machine diverged (seed %d)\nfast=%r\nlegacy=%r\nsrc=%s"
        % (seed, fast, legacy, source))
    fast_i = interpreter_observables(program, True)
    legacy_i = interpreter_observables(program, False)
    assert fast_i == legacy_i, (
        "interpreter diverged (seed %d)\nfast=%r\nlegacy=%r"
        % (seed, fast_i, legacy_i))
    if pipeline:
        assert pipeline_observables(source, True) \
            == pipeline_observables(source, False), \
            "pipeline report diverged (seed %d)\nsrc=%s" % (seed, source)


# ---------------------------------------------------------------------------
# default tier: a handful of seeds, all three levels
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(4))
def test_engine_differential(seed):
    assert_identical(seed, pipeline=False)


@pytest.mark.parametrize("seed", [100, 101])
def test_pipeline_differential(seed):
    assert_identical(seed, pipeline=True)


def test_tls_statistics_identical():
    """Violation/restart/commit counts and the cycle breakdown of every
    executed STL must match across engines (stepwise-table invariant)."""
    source = random_workload(7)          # chain+carried → violations
    reports = {}
    for fastpath in (True, False):
        config = HydraConfig(fastpath=fastpath)
        reports[fastpath] = Jrpm(config=config).run(source)
    fast, legacy = reports[True], reports[False]
    assert fast.breakdown.to_dict() == legacy.breakdown.to_dict()
    fast_stats = {k: v.to_dict() for k, v in fast.stl_run_stats.items()}
    legacy_stats = {k: v.to_dict()
                    for k, v in legacy.stl_run_stats.items()}
    assert fast_stats == legacy_stats
    assert fast.tls.cycles == legacy.tls.cycles
    assert fast.tls.instructions == legacy.tls.instructions


# ---------------------------------------------------------------------------
# exception paths: the flush-before-raise protocol
# ---------------------------------------------------------------------------

_RAISING = [
    ("div by zero", "int d = 4 - 4; return 12 / d;"),
    ("rem by zero", "int d = 9 - 9; return 12 % d;"),
    ("array bounds", "int[] a = new int[4]; int i = 7; return a[i];"),
]


@pytest.mark.parametrize("label,body", _RAISING,
                         ids=[r[0] for r in _RAISING])
def test_exception_differential(label, body):
    source = wrap_main("int warm = 0;\n"
                       "        for (int i = 0; i < 8; i++)"
                       " { warm = warm + i * 3; }\n"
                       "        Sys.printInt(warm);\n        " + body)
    program = compile_source(source)
    fast = machine_observables(program, True)
    legacy = machine_observables(program, False)
    assert fast == legacy, "exception path diverged: %s" % label
    assert fast["exception"] != "None"


def test_null_check_differential():
    source = ("""
class Acc { int total; }
class Main {
    static int main() {
        Acc x;
        if (1 > 2) { x = new Acc(); }
        return x.total;
    }
}
""")
    program = compile_source(source)
    fast = machine_observables(program, True)
    legacy = machine_observables(program, False)
    assert fast == legacy
    assert fast["exception"] != "None"


# ---------------------------------------------------------------------------
# slow tier: the ~20-workload sweep, pipeline level included
# ---------------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("seed", range(20))
def test_engine_differential_sweep(seed):
    assert_identical(seed, pipeline=True)
