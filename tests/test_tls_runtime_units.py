"""Focused TLS runtime behaviours not covered by the end-to-end tests:
commit ordering, violation cascades, exit protocol, accounting."""

import pytest

from repro.core.pipeline import Jrpm
from repro.hydra.config import HydraConfig
from repro.minijava import compile_source

from conftest import wrap_main


def run(src, config=None, **kw):
    return Jrpm(config=config, **kw).run(compile_source(src))


def test_zero_trip_loop():
    report = run(wrap_main("""
        int n = 0;
        int s = 0;
        int[] a = new int[8];
        for (int i = 0; i < 600; i++) { a[i % 8] = i; s += i; }
        for (int i = 0; i < n; i++) { s = -999; }
        Sys.printInt(s);
        return s;
    """))
    assert report.outputs_match()


def test_single_iteration_loop_in_nest():
    report = run(wrap_main("""
        int total = 0;
        for (int outer = 0; outer < 200; outer++) {
            for (int inner = 0; inner < 1; inner++) {
                total += outer & 7;
            }
        }
        Sys.printInt(total);
        return total;
    """))
    assert report.outputs_match()


def test_loop_with_variable_trip_count():
    report = run(wrap_main("""
        int s = 0;
        for (int i = 0; i < 60; i++) {
            for (int j = 0; j < i % 7; j++) { s += j; }
        }
        Sys.printInt(s);
        return s;
    """))
    assert report.outputs_match()


def test_commit_order_respects_sequence():
    """Iterations write a strictly ordered journal; TLS must preserve it."""
    report = run(wrap_main("""
        int[] journal = new int[400];
        int pos = 0;
        for (int i = 0; i < 400; i++) {
            journal[pos] = i;
            pos = pos + 1;
        }
        int ok = 1;
        for (int i = 0; i < 400; i++) {
            if (journal[i] != i) { ok = 0; }
        }
        Sys.printInt(ok);
        return ok;
    """))
    assert report.outputs_match()
    assert report.tls.output == [1]


def test_violation_cascade_restarts_all_later_threads():
    config = HydraConfig(min_predicted_speedup=0.0)
    report = run(wrap_main("""
        int[] chain = new int[300];
        chain[0] = 7;
        int t = 0;
        for (int i = 1; i < 300; i++) {
            chain[i] = (chain[i-1] * 5 + 3) & 0xFFF;
            t ^= chain[i];
        }
        Sys.printInt(t);
        return t;
    """), config=config)
    assert report.outputs_match()
    if report.plans and report.breakdown.violations:
        # Hydra restarts the violated thread AND everything above it.
        assert report.breakdown.squashes >= report.breakdown.violations / 4


def test_accounting_conservation():
    """Committed + violated + overhead CPU time must not be wildly out
    of line with wall time x CPUs."""
    report = run(wrap_main("""
        int[] a = new int[900];
        int s = 0;
        for (int i = 0; i < 900; i++) { a[i] = i * 3; s += a[i] & 15; }
        Sys.printInt(s);
        return s;
    """))
    breakdown = report.breakdown
    cpu_time = (breakdown.run_used + breakdown.wait_used
                + breakdown.run_violated + breakdown.wait_violated
                + breakdown.overhead)
    wall = report.tls.cycles
    assert cpu_time <= wall * report.config.num_cpus * 1.05
    assert cpu_time >= wall * 0.5


def test_exception_before_any_commit():
    report = run(wrap_main("""
        int[] a = new int[4];
        int n = 500;
        int s = 0;
        for (int i = 0; i < n; i++) { s += a[i]; }
        Sys.printInt(s);
        return s;
    """))
    assert report.sequential.guest_exception is not None
    assert report.tls.guest_exception is not None


def test_exception_output_prefix_preserved():
    """Output printed before the faulting loop must survive; speculative
    prints after the fault must not appear."""
    report = run(wrap_main("""
        Sys.printInt(111);
        int[] a = new int[10];
        int s = 0;
        for (int i = 0; i < 500; i++) { s += a[i]; }
        Sys.printInt(222);
        return s;
    """))
    assert report.sequential.output == report.tls.output == [111]


def test_nested_stls_in_called_method():
    """A selected loop in a callee invoked from a selected caller loop
    exercises the dynamic-nesting conflict or the switch protocol."""
    report = run("""
class Main {
    static int[] data;
    static int burst(int base) {
        int local = 0;
        for (int k = 0; k < 40; k++) {
            local += data[(base + k) % 512] & 31;
        }
        return local;
    }
    static int main() {
        data = new int[512];
        for (int i = 0; i < 512; i++) { data[i] = i * 7; }
        int total = 0;
        for (int b = 0; b < 80; b++) {
            total += burst(b * 13);
        }
        Sys.printInt(total);
        return total;
    }
}
""")
    assert report.outputs_match()
    assert report.tls_speedup > 1.2


def test_two_cpu_configuration():
    config = HydraConfig(num_cpus=2)
    report = run(wrap_main("""
        int s = 0;
        int[] a = new int[500];
        for (int i = 0; i < 500; i++) { a[i] = i; s += i & 3; }
        Sys.printInt(s);
        return s;
    """), config=config)
    assert report.outputs_match()
    assert 1.0 < report.tls_speedup <= 2.2


def test_stl_stats_recorded_per_loop():
    report = run(wrap_main("""
        int s = 0;
        int[] a = new int[600];
        for (int i = 0; i < 600; i++) { a[i] = i; }
        for (int i = 0; i < 600; i++) { s += a[i]; }
        Sys.printInt(s);
        return s;
    """))
    assert report.stl_run_stats
    for stats in report.stl_run_stats.values():
        assert stats.entries >= 1
        assert stats.threads_committed > 0
        assert stats.avg_thread_cycles > 0
