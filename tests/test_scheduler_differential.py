"""Differential oracle: event-driven TLS scheduler vs stepwise scan.

The tentpole invariant of the event-driven scheduler
(:meth:`repro.tls.runtime.TlsRuntime._run_event`) is **observational
cycle exactness**: for any guest program, batching straight-line
non-memory runs between scheduler events must reproduce the stepwise
smallest-clock interleaving bit-for-bit —

* printed output, return value and guest-exception behaviour,
* total simulated cycles and instructions of the TLS run,
* per-STL statistics: commits, violations, squashes, restarts and the
  cycle-breakdown accounting,
* the full serialized pipeline report, and
* the cycle-level trace event stream (timestamps, CPUs, durations,
  payloads — byte-identical Chrome-trace JSON).

This file enforces that over randomized MiniJava workloads plus
targeted programs forcing every speculative control path: RAW
violations, buffer-overflow stalls, deferred guest exceptions and
lock-contention (WAITLOCK/SIGNAL) scheduling.  A subset runs in the
default tier; the full 26-workload registry sweep is marked ``slow``.
"""

import json

import pytest

from repro.core.pipeline import Jrpm
from repro.hydra.config import HydraConfig
from repro.minijava import compile_source

from conftest import wrap_main
from test_engine_differential import random_workload

SCHEDULERS = ("event", "stepwise")


# ---------------------------------------------------------------------------
# observables
# ---------------------------------------------------------------------------

def report_observables(source, scheduler, config=None, **kwargs):
    """Canonical JSON of the full pipeline report, minus the config
    (whose ``scheduler`` field differs by construction)."""
    config = config or HydraConfig()
    config.scheduler = scheduler
    report = Jrpm(config=config, **kwargs).run(compile_source(source))
    payload = report.to_dict()
    payload.pop("config", None)
    return json.dumps(payload, sort_keys=True, default=str)


def assert_identical(source, label, config_factory=None, **kwargs):
    observed = {}
    for scheduler in SCHEDULERS:
        config = config_factory() if config_factory else None
        observed[scheduler] = report_observables(
            source, scheduler, config=config, **kwargs)
    assert observed["event"] == observed["stepwise"], (
        "schedulers diverged: %s\nsrc=%s" % (label, source))


# ---------------------------------------------------------------------------
# default tier: randomized workloads (same generator as the engine
# differential — chain/carried variants force violations and restarts)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(6))
def test_scheduler_differential_random(seed):
    assert_identical(random_workload(seed), "seed %d" % seed)


# ---------------------------------------------------------------------------
# targeted speculative control paths
# ---------------------------------------------------------------------------

FORCED_VIOLATIONS = wrap_main("""
    int[] b = new int[500];
    b[0] = 1;
    int t = 0;
    for (int i = 1; i < 500; i++) {
        b[i] = b[i-1] * 3 + 1;
        t ^= b[i] & 255;
    }
    Sys.printInt(t);
    return t;
""")


def test_forced_violation_path():
    """A loop-carried heap chain admitted by a zero speedup threshold:
    every thread restarts at least once, exercising _restart_thread's
    chain invalidation (the ``_gen`` bump) under run-ahead."""
    assert_identical(
        FORCED_VIOLATIONS, "forced violations",
        config_factory=lambda: HydraConfig(min_predicted_speedup=0.0))


OVERFLOW = wrap_main("""
    int[] a = new int[8000];
    int s = 0;
    for (int i = 0; i < 120; i++) {
        int b = i * 48;
        a[b] = i; a[b + 8] = i + 1; a[b + 16] = i + 2;
        a[b + 24] = i + 3; a[b + 32] = i + 4; a[b + 40] = i + 5;
        s += a[b];
    }
    Sys.printInt(s);
    return s;
""")


def test_buffer_overflow_path():
    """Six distinct store lines per iteration against a 2-line store
    buffer: overflow stalls park the thread until it becomes head."""
    assert_identical(
        OVERFLOW, "overflow stalls",
        config_factory=lambda: HydraConfig(
            load_buffer_lines=2, store_buffer_lines=2,
            max_overflow_frequency=2.0, min_predicted_speedup=0.0))


SPECULATIVE_EXCEPTION = wrap_main("""
    int[] a = new int[100];
    int n = 200;     // out of bounds at i == 100
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += a[i] + i;
    }
    Sys.printInt(s);
    return s;
""")


def test_speculative_exception_path():
    """A guest exception inside a speculated region is deferred until
    the thread is head; both schedulers must raise it at the same
    simulated cycle with identical flushed output."""
    assert_identical(SPECULATIVE_EXCEPTION, "speculative exception")


LOCK_CONTENTION = wrap_main("""
    int seed = 3;
    int acc = 0;
    for (int i = 0; i < 700; i++) {
        seed = (seed * 48271 + 11) & 0x7FFFFFFF;
        int w = seed % 64;
        int v = (w * w + w) % 101;
        acc = (acc + v) & 0xFFFF;
    }
    Sys.printInt(acc);
    Sys.printInt(seed);
    return acc;
""")


def test_lock_contention_path():
    """The synchronizing-lock decomposition (paper's WAITLOCK/SIGNAL):
    threads block in WAIT_LOCK and are woken at release — the
    wake-at-release fast-forward must charge identical poll cycles."""
    assert_identical(LOCK_CONTENTION, "lock contention")


def test_lock_contention_trace_stream():
    """Byte-identical Chrome-trace event streams (timestamps, CPUs,
    durations, violation arcs) on the lock-contention workload."""
    from repro.trace import TraceOptions, chrome_trace
    streams = {}
    for scheduler in SCHEDULERS:
        config = HydraConfig(scheduler=scheduler)
        report = Jrpm(config=config, trace=TraceOptions()).run(
            compile_source(LOCK_CONTENTION))
        streams[scheduler] = json.dumps(
            chrome_trace(report.trace, name="diff"), sort_keys=True)
    assert streams["event"] == streams["stepwise"]


def test_violation_trace_stream():
    """Same, on the forced-violation workload: restart/violation events
    carry exact cycle stamps through truncation-and-replay."""
    from repro.trace import TraceOptions, chrome_trace
    streams = {}
    for scheduler in SCHEDULERS:
        config = HydraConfig(scheduler=scheduler,
                             min_predicted_speedup=0.0)
        report = Jrpm(config=config, trace=TraceOptions()).run(
            compile_source(FORCED_VIOLATIONS))
        streams[scheduler] = json.dumps(
            chrome_trace(report.trace, name="diff"), sort_keys=True)
    assert streams["event"] == streams["stepwise"]


# ---------------------------------------------------------------------------
# slow tier: every registry workload, full-report comparison
# ---------------------------------------------------------------------------

def _workload_names():
    from repro.workloads.registry import all_workloads
    return [w.name for w in all_workloads()]


@pytest.mark.slow
@pytest.mark.parametrize("name", _workload_names())
def test_scheduler_differential_registry(name):
    from repro.workloads.registry import lookup
    source = lookup(name).source("small")
    assert_identical(source, name)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(6, 20))
def test_scheduler_differential_random_sweep(seed):
    assert_identical(random_workload(seed), "seed %d" % seed)
