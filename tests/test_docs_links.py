"""Docs hygiene: every relative link in the repo's markdown resolves.

Fast-tier guard: a renamed doc or a typo'd ``[text](path)`` fails here
instead of shipping a dead link.  External URLs and pure anchors are
out of scope — only relative file links are checked.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) — excluding images' inner ! is fine, same rule applies
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    found = []
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames
                       if d not in (".git", ".cache", "__pycache__",
                                    ".pytest_cache", "node_modules",
                                    ".hypothesis")]
        for filename in filenames:
            if filename.endswith(".md"):
                found.append(os.path.join(dirpath, filename))
    return sorted(found)


def relative_links(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # strip fenced code blocks — shell/one-liner examples are not links
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("md_path", markdown_files(),
                         ids=lambda p: os.path.relpath(p, REPO_ROOT))
def test_relative_markdown_links_resolve(md_path):
    base = os.path.dirname(md_path)
    dead = []
    for target in relative_links(md_path):
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            dead.append(target)
    assert not dead, ("dead relative link(s) in %s: %s"
                      % (os.path.relpath(md_path, REPO_ROOT), dead))


def test_docs_are_linked_from_readme():
    with open(os.path.join(REPO_ROOT, "README.md"),
              encoding="utf-8") as fh:
        readme = fh.read()
    for doc in ("docs/architecture.md", "docs/observability.md",
                "docs/adaptation.md", "docs/minijava.md",
                "docs/performance.md", "docs/service.md"):
        assert doc in readme, "%s not linked from README" % doc
