"""Docs hygiene: every relative link in the repo's markdown resolves.

Fast-tier guard: a renamed doc or a typo'd ``[text](path)`` fails here
instead of shipping a dead link.  External URLs and pure anchors are
out of scope — only relative file links are checked.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) — excluding images' inner ! is fine, same rule applies
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    found = []
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames
                       if d not in (".git", ".cache", "__pycache__",
                                    ".pytest_cache", "node_modules",
                                    ".hypothesis")]
        for filename in filenames:
            if filename.endswith(".md"):
                found.append(os.path.join(dirpath, filename))
    return sorted(found)


def relative_links(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # strip fenced code blocks — shell/one-liner examples are not links
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("md_path", markdown_files(),
                         ids=lambda p: os.path.relpath(p, REPO_ROOT))
def test_relative_markdown_links_resolve(md_path):
    base = os.path.dirname(md_path)
    dead = []
    for target in relative_links(md_path):
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            dead.append(target)
    assert not dead, ("dead relative link(s) in %s: %s"
                      % (os.path.relpath(md_path, REPO_ROOT), dead))


def test_docs_are_linked_from_readme():
    with open(os.path.join(REPO_ROOT, "README.md"),
              encoding="utf-8") as fh:
        readme = fh.read()
    for doc in ("docs/architecture.md", "docs/observability.md",
                "docs/adaptation.md", "docs/minijava.md",
                "docs/performance.md", "docs/service.md",
                "docs/analysis.md", "docs/profdb.md",
                "docs/metrics.md", "docs/index.md"):
        assert doc in readme, "%s not linked from README" % doc


def test_every_docs_page_is_reachable_from_index():
    """docs/index.md is the TOC: walking its links (transitively,
    within docs/) must reach every docs/*.md file."""
    docs_dir = os.path.join(REPO_ROOT, "docs")
    pages = {name for name in os.listdir(docs_dir)
             if name.endswith(".md")}
    reached = set()
    frontier = ["index.md"]
    while frontier:
        page = frontier.pop()
        if page in reached or page not in pages:
            continue
        reached.add(page)
        for target in relative_links(os.path.join(docs_dir, page)):
            resolved = os.path.normpath(
                os.path.join(docs_dir, target))
            if os.path.dirname(resolved) == docs_dir:
                frontier.append(os.path.basename(resolved))
    assert reached == pages, (
        "docs pages unreachable from index.md: %s"
        % sorted(pages - reached))


def test_docs_pages_cross_link_each_other():
    """Every docs page links the index and every sibling page."""
    docs_dir = os.path.join(REPO_ROOT, "docs")
    pages = sorted(name for name in os.listdir(docs_dir)
                   if name.endswith(".md"))
    for page in pages:
        links = set()
        for target in relative_links(os.path.join(docs_dir, page)):
            resolved = os.path.normpath(os.path.join(docs_dir, target))
            if os.path.dirname(resolved) == docs_dir:
                links.add(os.path.basename(resolved))
        missing = set(pages) - {page} - links
        assert not missing, ("docs/%s does not link: %s"
                             % (page, sorted(missing)))
