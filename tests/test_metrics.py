"""The unified metrics registry (``repro.metrics``).

Covers the ISSUE-10 acceptance surface:

* typed families (counter / gauge / histogram) with labels, idempotent
  re-registration, and type/label mismatch rejection;
* thread-safety: concurrent ``inc``/``record`` from many threads loses
  no updates;
* lossless ``to_dict``/``from_dict`` round-trips and merge semantics
  (counters add, gauges max, histograms concatenate);
* the deque reservoir's O(1) wrap behavior (the PR-6
  ``LatencyHistogram`` ``list.pop(0)`` fix);
* OpenMetrics rendering passing its own lint, plus the lint's ability
  to reject malformed expositions;
* the ``/metrics`` HTTP endpoint over a real socket;
* the global enable switch and report-fold instrumentation.
"""

import http.client
import json
import threading

import pytest

from repro.metrics import (CONTENT_TYPE, DEFAULT_MAX_SAMPLES,
                           METRICS_SCHEMA_VERSION, MetricsHttpServer,
                           MetricsRegistry, enabled, lint,
                           observe_report_dict, render, set_enabled)
from repro.service.stats import LatencyHistogram


# ---------------------------------------------------------------------------
# families
# ---------------------------------------------------------------------------

def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    runs = registry.counter("runs", "total runs")
    runs.inc()
    runs.inc(2.5)
    assert runs.value == 3.5
    with pytest.raises(ValueError):
        runs.labels(verb="run").inc()   # label-less family

    depth = registry.gauge("depth", "queue depth")
    depth.set(7)
    depth.dec(2)
    assert depth.value == 5.0

    lat = registry.histogram("latency", "seconds")
    for value in (0.001, 0.002, 0.004, 10.0):
        lat.record(value)
    hist = lat.to_dict()["series"][""]
    assert hist["count"] == 4
    assert hist["max"] == 10.0
    assert sum(hist["buckets"]) == 4


def test_registration_is_idempotent_and_type_checked():
    registry = MetricsRegistry()
    first = registry.counter("jobs", "jobs", labels=("verb",))
    again = registry.counter("jobs", "ignored", labels=("verb",))
    assert first is again
    with pytest.raises(ValueError):
        registry.gauge("jobs")          # type mismatch
    with pytest.raises(ValueError):
        registry.counter("jobs")        # label mismatch
    with pytest.raises(ValueError):
        registry.counter("bad name")    # OpenMetrics-illegal name
    with pytest.raises(ValueError):
        registry.counter("9lives")


def test_labeled_series_are_independent():
    registry = MetricsRegistry()
    jobs = registry.counter("jobs", "by verb", labels=("verb",))
    jobs.labels(verb="run").inc(3)
    jobs.labels(verb="profile").inc()
    payload = jobs.to_dict()
    assert payload["series"]["run"]["value"] == 3.0
    assert payload["series"]["profile"]["value"] == 1.0
    with pytest.raises(ValueError):
        jobs.labels(wrong="x")


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("n").inc(-1)


# ---------------------------------------------------------------------------
# thread safety
# ---------------------------------------------------------------------------

def test_registry_is_thread_safe_under_concurrent_mutation():
    """8 threads x 1000 mixed mutations lose no updates."""
    registry = MetricsRegistry()
    threads_n, per_thread = 8, 1000

    def hammer(index):
        counter = registry.counter("hits", "total", labels=("worker",))
        gauge = registry.gauge("level")
        hist = registry.histogram("obs")
        for i in range(per_thread):
            counter.labels(worker=str(index % 2)).inc()
            gauge.inc()
            hist.record(i * 0.001)

    threads = [threading.Thread(target=hammer, args=(i,))
               for i in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = sum(child.value for _, child in
                registry.get("hits").series())
    assert total == threads_n * per_thread
    assert registry.get("level").value == threads_n * per_thread
    hist = registry.get("obs").to_dict()["series"][""]
    assert hist["count"] == threads_n * per_thread
    assert sum(hist["buckets"]) == threads_n * per_thread


# ---------------------------------------------------------------------------
# round-trip / merge
# ---------------------------------------------------------------------------

def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("runs", "runs", labels=("verb",)) \
        .labels(verb="run").inc(4)
    registry.gauge("depth", "depth").set(3)
    hist = registry.histogram("lat", "seconds")
    for value in (0.01, 0.02, 0.4):
        hist.record(value)
    return registry


def test_to_dict_from_dict_round_trip_is_lossless():
    registry = _populated_registry()
    payload = registry.to_dict()
    assert payload["schema"] == METRICS_SCHEMA_VERSION
    # JSON-safe: survives an actual encode/decode
    clone = MetricsRegistry.from_dict(json.loads(json.dumps(payload)))
    assert clone.to_dict() == payload
    assert render(clone) == render(registry)


def test_from_dict_rejects_unknown_schema():
    with pytest.raises(ValueError):
        MetricsRegistry.from_dict({"schema": 999, "families": {}})


def test_merge_semantics():
    """Counters add, gauges take the max, histograms concatenate."""
    ours = _populated_registry()
    theirs = _populated_registry()
    theirs.get("depth").set(1)          # lower HWM must not win
    ours.merge(theirs.to_dict())
    assert ours.get("runs").labels(verb="run").value == 8.0
    assert ours.get("depth").value == 3.0
    hist = ours.get("lat").to_dict()["series"][""]
    assert hist["count"] == 6
    assert hist["sum"] == pytest.approx(2 * (0.01 + 0.02 + 0.4))


# ---------------------------------------------------------------------------
# reservoir wrap (satellite 1)
# ---------------------------------------------------------------------------

def test_histogram_reservoir_wraps_keeping_newest():
    registry = MetricsRegistry()
    hist = registry.histogram("w", max_samples=16)
    for i in range(100):
        hist.record(float(i))
    payload = hist.to_dict()["series"][""]
    assert payload["count"] == 100            # counters cover everything
    assert payload["samples"] == [float(i) for i in range(84, 100)]
    assert hist.labels().percentile(1.0) == 99.0  # newest-wins window


def test_latency_histogram_wraps_like_a_deque():
    """The PR-6 wire shape survives, and the reservoir is newest-wins
    with O(1) wrap (regression test for the ``list.pop(0)`` variant)."""
    hist = LatencyHistogram()
    for i in range(LatencyHistogram.MAX_SAMPLES + 50):
        hist.record(float(i))
    payload = hist.to_dict()
    assert set(payload) == {"count", "mean", "p50", "p95", "max",
                            "buckets"}
    assert payload["count"] == LatencyHistogram.MAX_SAMPLES + 50
    assert payload["max"] == float(LatencyHistogram.MAX_SAMPLES + 49)
    assert len(hist._samples) == LatencyHistogram.MAX_SAMPLES
    assert hist._samples[0] == 50.0           # oldest 50 rolled off


# ---------------------------------------------------------------------------
# OpenMetrics exposition (satellite 3)
# ---------------------------------------------------------------------------

def test_render_passes_its_own_lint():
    registry = _populated_registry()
    text = render(registry)
    assert lint(text) == []
    assert text.endswith("# EOF\n")
    assert "runs_total{verb=\"run\"} 4" in text
    assert "depth 3" in text
    assert 'lat_bucket{le="+Inf"} 3' in text
    assert "lat_count 3" in text


def test_lint_rejects_malformed_expositions():
    assert lint("no eof terminator\n")
    # sample before TYPE
    bad = "runs_total 1\n# TYPE runs counter\n# EOF\n"
    assert any("TYPE" in p or "before" in p for p in lint(bad))
    # counter sample without _total suffix
    bad = "# TYPE runs counter\nruns 1\n# EOF\n"
    assert lint(bad)
    # non-cumulative histogram buckets
    bad = ("# TYPE lat histogram\n"
           'lat_bucket{le="0.1"} 5\n'
           'lat_bucket{le="+Inf"} 3\n'
           "lat_count 5\nlat_sum 1.0\n# EOF\n")
    assert any("cumulative" in p or "monoton" in p for p in lint(bad))


def test_rendered_registry_is_curlable_over_http():
    server = MetricsHttpServer(_populated_registry)
    import asyncio

    async def run():
        await server.start()
        return server.port

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    try:
        thread.start()
        port = asyncio.run_coroutine_threadsafe(run(), loop).result(10)
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        assert response.status == 200
        assert response.getheader("Content-Type") == CONTENT_TYPE
        assert lint(body) == []
        assert "runs_total" in body
        conn.close()

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        conn.request("GET", "/nope")
        assert conn.getresponse().status == 404
        conn.close()
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


# ---------------------------------------------------------------------------
# enable switch + report folds
# ---------------------------------------------------------------------------

def test_set_enabled_makes_mutation_a_no_op():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    hist = registry.histogram("h")
    assert enabled()
    previous = set_enabled(False)
    try:
        assert previous is True
        counter.inc()
        hist.record(1.0)
        assert counter.value == 0.0
        assert hist.to_dict()["series"][""]["count"] == 0
    finally:
        set_enabled(True)
    counter.inc()
    assert counter.value == 1.0


def test_observe_report_dict_folds_tls_counters(tiny_report_dict):
    registry = MetricsRegistry()
    observe_report_dict(tiny_report_dict, wall_seconds=0.5,
                        registry=registry)
    committed = registry.get("jrpm_tls_threads") \
        .labels(outcome="committed").value
    assert committed == tiny_report_dict["breakdown"]["commits"]
    runs = registry.get("jrpm_runs")
    assert sum(child.value for _, child in runs.series()) == 1
    phases = registry.get("jrpm_run_simulated_cycles")
    assert phases.labels(phase="sequential").value \
        == tiny_report_dict["sequential"]["cycles"]


@pytest.fixture(scope="module")
def tiny_report_dict():
    from repro.core.pipeline import Jrpm
    from repro.minijava import compile_source
    from conftest import wrap_main
    source = wrap_main("""
        int s = 0;
        for (int i = 0; i < 900; i = i + 1) { s = s + i * 5; }
        return s;
    """)
    report = Jrpm().run(compile_source(source), name="tiny")
    return report.to_dict()
