"""The default configuration must encode the paper's constants."""

from repro.hydra.config import (ALLOCATOR_BASE, HEAP_BASE, STACK_BASE,
                                STATICS_BASE, HydraConfig,
                                SpeculationOverheads)


def test_hydra_figure2_constants():
    config = HydraConfig()
    assert config.num_cpus == 4
    assert config.l1_size_bytes == 16 * 1024
    assert config.l2_size_bytes == 2 * 1024 * 1024
    assert config.line_bytes == 32
    assert config.l2_hit_cycles == 5
    assert config.interprocessor_cycles == 10
    assert config.memory_cycles == 50


def test_speculative_buffer_limits():
    config = HydraConfig()
    # Load buffer: 16kB = 512 lines x 32B, store buffer: 2kB = 64 lines.
    assert config.load_buffer_lines * config.line_bytes == 16 * 1024
    assert config.store_buffer_lines * config.line_bytes == 2 * 1024


def test_table1_overheads():
    new = SpeculationOverheads.new_handlers()
    old = SpeculationOverheads.old_handlers()
    assert (new.startup, new.shutdown, new.eoi, new.restart) == (23, 16, 5, 6)
    assert (old.startup, old.shutdown, old.eoi, old.restart) \
        == (41, 46, 14, 13)
    assert HydraConfig().overheads == new


def test_test_profiler_constants():
    config = HydraConfig()
    assert config.comparator_banks == 8
    assert config.min_predicted_speedup == 1.2
    assert 0 < config.max_overflow_frequency < 0.5
    assert config.sync_lock_arc_frequency == 0.8


def test_memory_map_regions_disjoint_and_ordered():
    assert STATICS_BASE < STACK_BASE < ALLOCATOR_BASE < HEAP_BASE


def test_configs_are_independent():
    a = HydraConfig()
    b = HydraConfig(num_cpus=8)
    b.overheads.startup = 99
    assert a.num_cpus == 4
    assert a.overheads.startup == 23    # default_factory: no sharing


def test_helper_accessors():
    config = HydraConfig()
    assert config.lines_of(1024) == 32
    assert config.line_of(0x40) == 2
