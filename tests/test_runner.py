"""Tests for the parallel suite runner, report cache and serialization.

Tiny synthetic workloads (explicit ``source=``) keep the multiprocess
tests fast; real registry workloads appear only where the contract is
about the registry (size/variant resolution).
"""

import json
import os
import time

import pytest

from repro.core.pipeline import Jrpm, JrpmReport
from repro.hydra.config import HydraConfig
from repro.minijava import compile_source
from repro.runner import (ProcessPool, ReportCache, RunRequest,
                          SuiteMetrics, SuiteRunError, SuiteRunner,
                          cache_key)

#: a small but genuinely parallelizable program (reduction loop)
TINY = """
class Main {
    static int main() {
        int sum = 0;
        for (int i = 0; i < 4000; i++) {
            sum = sum + (i & 1023);
        }
        Sys.printInt(sum);
        return sum;
    }
}
"""

TINY_B = TINY.replace("4000", "3000")


def tiny_request(**kwargs):
    kwargs.setdefault("workload", "tiny")
    kwargs.setdefault("source", TINY)
    return RunRequest(**kwargs)


# ---------------------------------------------------------------------------
# serialization round-trip
# ---------------------------------------------------------------------------

def test_report_roundtrip_is_lossless():
    report = Jrpm().run(compile_source(TINY), name="tiny")
    data = report.to_dict()
    # must survive actual JSON (string keys, no tuples, no sets)
    restored = JrpmReport.from_dict(json.loads(json.dumps(data)))
    assert restored.to_dict() == data
    # derived metrics identical
    assert restored.tls_speedup == report.tls_speedup
    assert restored.total_speedup == report.total_speedup
    assert restored.serial_fraction == report.serial_fraction
    assert restored.profile_fraction == report.profile_fraction
    assert restored.phase_cycles() == report.phase_cycles()
    assert restored.outputs_match() == report.outputs_match()
    # object-graph invariants mirrored
    assert restored.dynamic_nesting == report.dynamic_nesting
    for loop_id, plan in restored.plans.items():
        assert plan.meta is restored.loop_table[loop_id]
    # rendering identical
    from repro.core.report import format_report
    assert (format_report(restored, verbose=True)
            == format_report(report, verbose=True))


def test_tls_fallback_report_roundtrip():
    """A report whose TLS run aliases the sequential run (no plans)
    preserves that aliasing through the round-trip."""
    source = """
class Main {
    static int main() {
        int x = 3;
        Sys.printInt(x);
        return x;
    }
}
"""
    report = Jrpm().run(compile_source(source), name="noplans")
    assert not report.plans
    restored = JrpmReport.from_dict(json.loads(json.dumps(
        report.to_dict())))
    assert restored.tls is restored.sequential
    assert restored.to_dict() == report.to_dict()


# ---------------------------------------------------------------------------
# cache behaviour
# ---------------------------------------------------------------------------

def test_cache_hit_and_invalidation(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = SuiteRunner(jobs=1, cache_dir=cache_dir)
    [report] = cold.run([tiny_request()])
    assert cold.metrics.hits == 0 and cold.metrics.misses == 1

    # identical request -> hit
    warm = SuiteRunner(jobs=1, cache_dir=cache_dir)
    [cached] = warm.run([tiny_request()])
    assert warm.metrics.hits == 1 and warm.metrics.misses == 0
    assert cached.to_dict() == report.to_dict()

    # config change -> miss
    cfg = SuiteRunner(jobs=1, cache_dir=cache_dir)
    cfg.run([tiny_request(config=HydraConfig(num_cpus=2))])
    assert cfg.metrics.misses == 1

    # source change -> miss
    src = SuiteRunner(jobs=1, cache_dir=cache_dir)
    src.run([tiny_request(source=TINY_B)])
    assert src.metrics.misses == 1

    # code-version salt participates in the key
    key_now = tiny_request().cache_key()
    key_other = tiny_request().cache_key(salt="different-code-version")
    assert key_now != key_other


def test_cache_key_diverges_on_adapt_knobs():
    """Adaptive runs must never alias one-shot cache entries (and the
    adaptation knobs themselves are part of the key)."""
    base = tiny_request().cache_key()
    adapt = tiny_request(adapt=True).cache_key()
    assert adapt != base
    assert tiny_request(adapt=True, adapt_epochs=7).cache_key() != adapt
    assert tiny_request(adapt=True,
                        adapt_policy="null").cache_key() != adapt
    # the epoch/policy knobs are inert while adapt is off
    assert tiny_request(adapt_epochs=7).cache_key() == base


def test_cached_adapt_run_preserves_adaptation_log(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = SuiteRunner(jobs=1, cache_dir=cache_dir)
    [report] = cold.run([tiny_request(adapt=True, adapt_epochs=2)])
    assert cold.metrics.misses == 1
    assert report.adaptation is not None
    assert report.adaptation.epochs_run >= 1

    warm = SuiteRunner(jobs=1, cache_dir=cache_dir)
    [cached] = warm.run([tiny_request(adapt=True, adapt_epochs=2)])
    assert warm.metrics.hits == 1
    assert cached.adaptation is not None
    assert cached.adaptation.to_dict() == report.adaptation.to_dict()
    assert cached.to_dict() == report.to_dict()


def test_cache_corrupt_entry_reads_as_miss(tmp_path):
    cache = ReportCache(str(tmp_path))
    key = cache_key(TINY, (), HydraConfig(),
                    __import__("repro.jit.stl", fromlist=["StlOptions"])
                    .StlOptions(),
                    __import__("repro.core.pipeline",
                               fromlist=["VmOptions"]).VmOptions())
    cache.put(key, {"report": {"bogus": True}})
    assert cache.get(key) is not None
    with open(cache.path_for(key), "w") as fh:
        fh.write("{truncated")
    assert cache.get(key) is None           # corrupt -> miss
    assert not os.path.exists(cache.path_for(key))   # and removed


def test_no_cache_runner_stores_nothing(tmp_path):
    runner = SuiteRunner(jobs=1, use_cache=False)
    runner.run([tiny_request()])
    assert runner.metrics.misses == 1
    assert len(runner.cache) == 0


# ---------------------------------------------------------------------------
# parallel execution
# ---------------------------------------------------------------------------

def test_parallel_reports_identical_to_serial(tmp_path):
    requests = [tiny_request(), tiny_request(source=TINY_B, tag="b")]
    serial = SuiteRunner(jobs=1, use_cache=False).run(
        [tiny_request(), tiny_request(source=TINY_B, tag="b")])
    parallel = SuiteRunner(jobs=4, use_cache=False).run(requests)
    assert len(serial) == len(parallel) == 2
    for left, right in zip(serial, parallel):
        assert left.to_dict() == right.to_dict()


def test_worker_crash_is_retried_once(tmp_path):
    marker = str(tmp_path / "crash.marker")
    runner = SuiteRunner(jobs=2, use_cache=False)
    [report] = runner.run([tiny_request(crash_marker=marker)])
    record = runner.metrics.records[-1]
    assert record.status == "ok"
    assert record.attempts == 2              # died once, retried once
    assert os.path.exists(marker)
    assert report.outputs_match()


def test_failed_run_raises_with_diagnostics(tmp_path):
    bad = tiny_request(source="class Main { static int main() { return }")
    runner = SuiteRunner(jobs=1, use_cache=False)
    with pytest.raises(SuiteRunError) as excinfo:
        runner.run([bad])
    assert "tiny" in str(excinfo.value)
    assert runner.metrics.failures


def test_manual_variant_resolution_errors_before_running():
    from repro.workloads import all_workloads
    name = next(w.name for w in all_workloads()
                if not w.has_manual_variant)
    with pytest.raises(ValueError, match="manual"):
        RunRequest(workload=name, variant="manual",
                   size="small").resolve_source()


# ---------------------------------------------------------------------------
# process pool unit tests (module-level fns so they pickle under spawn)
# ---------------------------------------------------------------------------

def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError("boom %s" % x)


def _die(x):
    os._exit(3)


def _sleep(x):
    time.sleep(30)


def test_pool_runs_all_tasks():
    pool = ProcessPool(_square, jobs=3)
    outcomes = pool.map([(i, i) for i in range(7)])
    assert sorted(outcomes) == list(range(7))
    assert all(outcomes[i].ok and outcomes[i].value == i * i
               for i in range(7))


def test_pool_reports_python_errors():
    pool = ProcessPool(_boom, jobs=2)
    outcomes = pool.map([(0, "x")])
    assert outcomes[0].status == "error"
    assert "boom x" in outcomes[0].error


def test_pool_gives_up_after_retry():
    pool = ProcessPool(_die, jobs=2, retries=1)
    outcomes = pool.map([(0, None)])
    assert outcomes[0].status == "crashed"
    assert outcomes[0].attempts == 2


def test_pool_enforces_timeout():
    pool = ProcessPool(_sleep, jobs=1, timeout=0.5)
    start = time.perf_counter()
    outcomes = pool.map([(0, None)])
    assert outcomes[0].status == "timeout"
    assert time.perf_counter() - start < 15


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

def test_metrics_jsonl_and_summary(tmp_path):
    runner = SuiteRunner(jobs=1, cache_dir=str(tmp_path / "c"))
    runner.run([tiny_request()])
    warm = SuiteRunner(jobs=1, cache_dir=str(tmp_path / "c"),
                       metrics=runner.metrics)
    warm.run([tiny_request()])
    metrics = warm.metrics
    assert metrics.hits == 1 and metrics.misses == 1
    assert metrics.hit_rate == 0.5
    summary = metrics.summary()
    assert "1 hit" in summary and "1 miss" in summary
    path = metrics.write_jsonl(str(tmp_path / "m" / "metrics.jsonl"))
    lines = [json.loads(line) for line in open(path)]
    assert lines[0]["event"] == "suite"
    assert lines[0]["cache_hits"] == 1
    runs = [line for line in lines if line["event"] == "run"]
    assert len(runs) == 2
    assert {run["cache_hit"] for run in runs} == {True, False}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_bench_manual_missing_errors_cleanly(capsys):
    from repro.cli import main
    from repro.workloads import all_workloads
    name = next(w.name for w in all_workloads()
                if not w.has_manual_variant)
    start = time.perf_counter()
    assert main(["bench", name, "--manual"]) == 2
    # errors out before compiling/running anything
    assert time.perf_counter() - start < 5.0
    captured = capsys.readouterr()
    assert "no manual variant" in captured.err
    assert captured.out == ""


def test_cli_suite_json_subset(tmp_path, capsys):
    from repro.cli import main
    from repro.workloads import all_workloads
    name = all_workloads()[0].name
    code = main(["suite", "--size", "small", "--only", name,
                 "--jobs", "2", "--json",
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert name in data["workloads"]
    assert data["workloads"][name]["outputs_match"] is True
    assert data["metrics"]["cache_misses"] == 1
    # warm re-run hits the cache
    main(["suite", "--size", "small", "--only", name, "--json",
          "--cache-dir", str(tmp_path / "cache")])
    data = json.loads(capsys.readouterr().out)
    assert data["metrics"]["cache_hits"] == 1
    assert data["metrics"]["cache_hit_rate"] == 1.0
