"""The observability layer: ring buffer, collector, exporters,
report round-trip, runner/CLI integration."""

import json

import pytest

from repro.core.pipeline import Jrpm, JrpmReport
from repro.minijava import compile_source
from repro.trace import (EVENT_KINDS, TraceCollector, TraceOptions,
                         TraceRing, chrome_trace, format_timeline,
                         validate_chrome_trace, write_chrome_trace)
from repro.trace.events import TraceEvent

from conftest import wrap_main

# A loop whose odd/even accumulator pattern produces genuine
# loop-carried RAW arcs through memory once parallelized, plus a clean
# parallel loop — commits AND restarts in one run.
VIOLATION_PRONE = """
class Main {
    static int main() {
        int[] a = new int[600];
        int[] hist = new int[4];
        for (int i = 0; i < 600; i++) {
            a[i] = (i * 37 + 11) % 97;
        }
        for (int i = 0; i < 600; i++) {
            hist[a[i] & 3] = hist[a[i] & 3] + a[i];
        }
        int sum = 0;
        for (int i = 0; i < 4; i++) { sum += hist[i]; }
        Sys.printInt(sum);
        return sum;
    }
}
"""


def traced_report(source=VIOLATION_PRONE, name="traced", **vm):
    jrpm = Jrpm(trace=True, **vm)
    report = jrpm.run(compile_source(source), name=name)
    assert report.outputs_match()
    return report


# ---------------------------------------------------------------------------
# ring buffer
# ---------------------------------------------------------------------------

def ev(i):
    return TraceEvent("thread", float(i), 0, 0.0, None, (i, "commit"))


def test_ring_keeps_events_before_capacity():
    ring = TraceRing(capacity=8)
    for i in range(5):
        ring.append(ev(i))
    assert len(ring) == 5
    assert ring.dropped == 0
    assert [e.ts for e in ring.events()] == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_ring_wraparound_drops_oldest_and_counts():
    ring = TraceRing(capacity=4)
    for i in range(11):
        ring.append(ev(i))
    assert len(ring) == 4
    assert ring.dropped == 7
    assert ring.total_seen == 11
    # chronological order preserved across the wrap point
    assert [e.ts for e in ring.events()] == [7.0, 8.0, 9.0, 10.0]
    assert [e.ts for e in ring] == [7.0, 8.0, 9.0, 10.0]


def test_ring_exact_fill_boundary():
    ring = TraceRing(capacity=3)
    for i in range(3):
        ring.append(ev(i))
    assert ring.dropped == 0
    assert [e.ts for e in ring.events()] == [0.0, 1.0, 2.0]
    ring.append(ev(3))
    assert ring.dropped == 1
    assert [e.ts for e in ring.events()] == [1.0, 2.0, 3.0]


def test_ring_clear_resets_everything():
    ring = TraceRing(capacity=2)
    for i in range(5):
        ring.append(ev(i))
    ring.clear()
    assert len(ring) == 0
    assert ring.dropped == 0
    assert ring.total_seen == 0
    assert list(ring.events()) == []


def test_ring_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        TraceRing(capacity=0)


def test_collector_ring_wraparound_in_real_run():
    """A tiny ring drops events but the aggregates keep exact counts."""
    jrpm = Jrpm(trace=TraceOptions(capacity=16))
    report = jrpm.run(compile_source(VIOLATION_PRONE), name="tiny-ring")
    aggregates = report.trace_aggregates
    assert len(report.trace.ring) == 16
    assert aggregates.events_dropped > 0
    assert (aggregates.events_recorded
            == len(report.trace.ring) + aggregates.events_dropped)
    # counters keep counting events the ring no longer holds
    assert aggregates.events_recorded == sum(aggregates.counts.values())


# ---------------------------------------------------------------------------
# end-to-end traced run
# ---------------------------------------------------------------------------

def test_traced_run_records_commits_and_restarts():
    report = traced_report()
    aggregates = report.trace_aggregates
    outcomes = {}
    cpus = set()
    for event in report.trace.events():
        if event.kind == "thread":
            outcomes[event.data[1]] = outcomes.get(event.data[1], 0) + 1
            cpus.add(event.cpu)
    assert outcomes.get("commit", 0) >= 1
    assert (outcomes.get("restart", 0) + outcomes.get("squash", 0)) >= 1
    assert len(cpus) > 1                       # multiple CPU tracks
    assert aggregates.counts.get("violation", 0) >= 1
    assert aggregates.restarts >= 1
    # violation arcs carry source/sink sites
    arcs = [e for e in report.trace.events() if e.kind == "violation"]
    assert any(e.data[3] is not None for e in arcs)   # source site
    assert any(e.data[4] is not None for e in arcs)   # sink site


def test_traced_run_has_handler_spans_and_buffers():
    report = traced_report()
    aggregates = report.trace_aggregates
    assert aggregates.handler_cycles.get("startup", 0) > 0
    assert aggregates.handler_cycles.get("eoi", 0) > 0
    assert aggregates.max_store_lines >= 1
    assert aggregates.cache["l1_hits"] > 0
    # per-loop roll-up agrees with the always-on StlRunStats
    for loop_id, stats in report.stl_run_stats.items():
        loop_agg = aggregates.per_loop.get(loop_id)
        if loop_agg is not None:
            assert loop_agg.commits == stats.threads_committed
            assert loop_agg.max_load_lines == stats.max_load_lines
            assert loop_agg.max_store_lines == stats.max_store_lines


def test_untraced_run_attaches_nothing():
    report = Jrpm().run(compile_source(VIOLATION_PRONE), name="plain")
    assert report.trace is None
    assert report.trace_aggregates is None


def test_tracing_does_not_change_simulation():
    """The collector is a pure observer: identical cycle counts."""
    program = compile_source(VIOLATION_PRONE)
    plain = Jrpm().run(program, name="a")
    traced = Jrpm(trace=True).run(program, name="a")
    assert traced.tls.cycles == plain.tls.cycles
    assert traced.sequential.cycles == plain.sequential.cycles
    assert traced.breakdown.to_dict() == plain.breakdown.to_dict()


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

def test_chrome_trace_schema_is_valid():
    report = traced_report()
    data = chrome_trace(report.trace, name="traced")
    assert validate_chrome_trace(data) == []
    events = data["traceEvents"]
    assert events, "no events exported"
    phases = {event["ph"] for event in events}
    assert {"X", "i", "M"} <= phases
    # every event on a known process, every TLS event on a CPU track
    assert {event["pid"] for event in events} <= {0, 1}
    for event in events:
        if event["ph"] == "M":
            continue                 # metadata events carry no timestamp
        assert isinstance(event["ts"], (int, float))
        if event["ph"] == "X":
            assert event["dur"] >= 0


def test_chrome_trace_validator_catches_problems():
    assert validate_chrome_trace({}) != []
    bad = {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                            "ts": "not-a-number", "dur": 1}]}
    assert validate_chrome_trace(bad) != []
    missing = {"traceEvents": [{"ph": "i", "name": "x", "pid": 0}]}
    assert validate_chrome_trace(missing) != []


def test_write_chrome_trace_roundtrips_through_json(tmp_path):
    report = traced_report()
    path = tmp_path / "trace.json"
    write_chrome_trace(report.trace, str(path), name="traced")
    data = json.loads(path.read_text())
    assert validate_chrome_trace(data) == []
    assert data["otherData"]["name"] == "traced"


def test_format_timeline_mentions_outcomes():
    report = traced_report()
    text = format_timeline(report.trace)
    assert "commit" in text
    assert "loop" in text


# ---------------------------------------------------------------------------
# report serialization
# ---------------------------------------------------------------------------

def test_report_roundtrip_preserves_trace_aggregates():
    report = traced_report()
    clone = JrpmReport.from_dict(report.to_dict())
    assert clone.to_dict() == report.to_dict()
    aggregates = clone.trace_aggregates
    assert aggregates is not None
    assert aggregates.to_dict() == report.trace_aggregates.to_dict()
    assert aggregates.restarts == report.trace_aggregates.restarts
    # the live event ring is transient, like the profiler
    assert clone.trace is None


def test_report_dict_without_trace_key_still_loads():
    """Schema-v1 dicts (pre-trace) must keep loading."""
    report = Jrpm().run(compile_source(VIOLATION_PRONE), name="v1")
    data = report.to_dict()
    data.pop("trace_aggregates", None)
    clone = JrpmReport.from_dict(data)
    assert clone.trace_aggregates is None
    assert clone.tls_speedup == report.tls_speedup


def test_verbose_report_shows_restarts_and_high_water_marks():
    from repro.core.report import format_report
    report = traced_report()
    text = format_report(report, verbose=True)
    assert "speculative run (per STL)" in text
    assert "restarts" in text
    assert "hwm load" in text
    assert "trace:" in text


# ---------------------------------------------------------------------------
# runner + CLI integration
# ---------------------------------------------------------------------------

def test_runner_traced_request_uses_distinct_cache_key(tmp_path):
    from repro.runner import RunRequest, SuiteRunner
    plain = RunRequest(workload="BitOps", size="small")
    traced = RunRequest(workload="BitOps", size="small", trace=True)
    assert plain.cache_key(salt="s") != traced.cache_key(salt="s")

    runner = SuiteRunner(jobs=1, cache_dir=str(tmp_path / "cache"))
    (report,) = runner.run([RunRequest(workload="BitOps", size="small",
                                       trace=True)])
    assert report.trace_aggregates is not None
    record = runner.metrics.records[-1]
    assert record.trace_events == report.trace_aggregates.events_recorded
    assert record.restarts == report.trace_aggregates.restarts
    assert "traced" in runner.metrics.summary()

    # warm hit returns the aggregates from the cache
    runner2 = SuiteRunner(jobs=1, cache_dir=str(tmp_path / "cache"))
    (cached,) = runner2.run([RunRequest(workload="BitOps", size="small",
                                        trace=True)])
    assert runner2.metrics.records[-1].cache_hit
    assert (cached.trace_aggregates.to_dict()
            == report.trace_aggregates.to_dict())


def test_cli_trace_writes_valid_chrome_json(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "bitops.json"
    code = main(["trace", "BitOps", "--size", "small",
                 "--out", str(out), "--timeline"])
    assert code == 0
    data = json.loads(out.read_text())
    assert validate_chrome_trace(data) == []
    names = {event.get("name") for event in data["traceEvents"]}
    assert any(name and name.startswith("iter") for name in names)
    captured = capsys.readouterr()
    assert "trace:" in captured.err
    assert "commit" in captured.out          # the --timeline text


def test_cli_trace_on_minijava_file(tmp_path, capsys):
    from repro.cli import main
    source_path = tmp_path / "prog.mj"
    source_path.write_text(wrap_main(
        "int t = 0;\n"
        "for (int i = 0; i < 400; i++) { t += (i * 7) % 13; }\n"
        "Sys.printInt(t);\n"
        "return t;"))
    out = tmp_path / "prog.json"
    assert main(["trace", str(source_path), "--out", str(out)]) == 0
    assert validate_chrome_trace(json.loads(out.read_text())) == []


def test_cli_bench_trace_flag(capsys):
    from repro.cli import main
    assert main(["bench", "BitOps", "--size", "small", "--trace"]) == 0
    captured = capsys.readouterr()
    assert "trace:" in captured.err
    assert "events recorded" in captured.err


# ---------------------------------------------------------------------------
# request-correlated tracing (ISSUE 10)
# ---------------------------------------------------------------------------

def test_chrome_trace_stamps_request_id_and_encloses_pipeline():
    """When a collector carries a daemon request id, the export gains
    one enclosing request span and stamps the id on every
    non-counter event's args."""
    report = traced_report()
    report.trace.request_id = "r42"
    data = chrome_trace(report.trace, name="traced")
    assert validate_chrome_trace(data) == []
    assert data["otherData"]["request_id"] == "r42"

    spans = [e for e in data["traceEvents"]
             if e.get("cat") == "request"]
    assert len(spans) == 1
    request_span = spans[0]
    assert request_span["ph"] == "X"
    assert request_span["name"] == "request r42"

    start = request_span["ts"]
    end = start + request_span["dur"]
    for event in data["traceEvents"]:
        if event["ph"] == "M" or event is request_span:
            continue
        if event["ph"] != "C":
            assert event["args"]["request_id"] == "r42"
            # the request span encloses every pipeline event
            assert start <= event["ts"] \
                <= event["ts"] + event.get("dur", 0) <= end
        else:
            # counter args must stay all-numeric for trace viewers
            assert "request_id" not in event.get("args", {})


def test_chrome_trace_without_request_id_is_byte_identical():
    """request_id=None must leave the export untouched (the scheduler
    differential suite depends on byte-identical traces)."""
    report = traced_report()
    assert report.trace.request_id is None
    plain = chrome_trace(report.trace, name="traced")
    assert not any(e.get("cat") == "request"
                   for e in plain["traceEvents"])
    assert "request_id" not in plain["otherData"]
    assert not any("request_id" in e.get("args", {})
                   for e in plain["traceEvents"] if e["ph"] != "M")
