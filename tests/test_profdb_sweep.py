"""Slow differential sweep: warm starts are plan-equivalent to cold.

For every workload in the registry (small size) this runs the pipeline
cold against a fresh profile DB and then again warm from the recorded
consensus, and requires the warm run to be *indistinguishable* from the
cold one where it matters: same selected STL plan sites, same TLS cycle
count and speedup (exact, not approximate — the simulator is
deterministic and the warm path replays the stored measurements
verbatim), and matching program output.  This is the acceptance gate
for the warm-start fast path: skipping the baseline and TEST runs must
never change what the system decides or computes.

Run with ``pytest -m slow`` (excluded from the fast tier).
"""

import pytest

from repro import Jrpm, compile_source
from repro.workloads import lookup, names


@pytest.mark.slow
@pytest.mark.parametrize("name", names())
def test_warm_start_plan_equivalent_to_cold(tmp_path, name):
    db_path = str(tmp_path / "profdb.json")
    source = lookup(name).source("small")
    cold = Jrpm(profdb=db_path).run(compile_source(source), name=name)
    assert cold.profile_provenance == "cold"
    warm = Jrpm(profdb=db_path).run(compile_source(source), name=name)
    assert warm.profile_provenance == "warm", (
        "%s: second run did not warm-start" % name)
    # the decision is identical: same committed plan sites ...
    assert sorted(warm.plans) == sorted(cold.plans)
    # ... and the speculative execution they drive is cycle-identical
    assert warm.tls.cycles == cold.tls.cycles
    assert warm.tls_speedup == cold.tls_speedup
    assert warm.tls.output == cold.tls.output
    assert warm.outputs_match()
    # replayed measurements round through the report unchanged
    assert warm.sequential.cycles == cold.sequential.cycles
    assert warm.profiling.cycles == cold.profiling.cycles


@pytest.mark.slow
def test_third_run_confirms_consensus(tmp_path):
    db_path = str(tmp_path / "profdb.json")
    source = lookup("euler").source("small")
    Jrpm(profdb=db_path).run(compile_source(source), name="euler")
    warm = Jrpm(profdb=db_path).run(compile_source(source), name="euler")
    assert warm.profile_provenance == "warm"
    # forcing a cold re-profile against an established consensus marks
    # the run "confirmed" when it re-derives the same plan
    confirmed = Jrpm(profdb=db_path, warm_start="off").run(
        compile_source(source), name="euler")
    assert confirmed.profile_provenance == "confirmed"
