"""Unit tests for the JrpmReport derived metrics (the Fig. 8/9 models)."""

from repro.core.pipeline import JrpmReport, RunMeasurement
from repro.hydra.config import HydraConfig
from repro.tls.stats import TlsStateBreakdown
from repro.tracer.selector import Prediction, StlPlan
from repro.jit.annotate import LoopMeta
from repro.tracer.stats import LoopStats


def make_report(seq=100000.0, prof=110000.0, tls=30000.0, plans=True,
                threads=2000, target=100):
    report = JrpmReport("unit")
    report.config = HydraConfig(profile_iteration_target=target)
    report.sequential = RunMeasurement(cycles=seq, output=[1])
    report.profiling = RunMeasurement(cycles=prof, output=[1])
    report.tls = RunMeasurement(cycles=tls, output=[1])
    report.compile_cycles = 1000
    report.recompile_cycles = 500
    report.breakdown = TlsStateBreakdown()
    if plans:
        meta = LoopMeta(1, "Main.main", 0, 1, 20, {}, True, None, 1)
        stats = LoopStats(1)
        stats.threads = threads
        stats.profiled_entries = 1
        stats.total_thread_cycles = seq * 0.9
        prediction = Prediction(1, 3.0, 10.0, int(seq * 0.9), 50.0,
                                threads, 0.0, 0.0)
        report.plans = {1: StlPlan(1, meta, prediction)}
        report.loop_table = {1: meta}
        report.loop_stats = {1: stats}
    return report


def test_speedups():
    report = make_report()
    assert abs(report.tls_speedup - 100000.0 / 30000.0) < 1e-9
    assert abs(report.profiling_slowdown - 1.1) < 1e-9


def test_profile_fraction_scales_with_threads():
    assert make_report(threads=100).profile_fraction == 1.0
    assert abs(make_report(threads=1000).profile_fraction - 0.1) < 1e-9
    assert make_report(threads=50).profile_fraction == 1.0


def test_profile_fraction_sums_across_loops():
    report = make_report(threads=60)
    extra = LoopStats(2)
    extra.threads = 540
    report.loop_stats[2] = extra
    assert abs(report.profile_fraction - 100.0 / 600.0) < 1e-9


def test_total_cycles_blends_phases():
    report = make_report(threads=1000)     # fraction = 0.1
    expected = (1000                        # compile
                + 0.1 * 110000.0            # profiled slice
                + 500                       # recompile
                + 0.9 * 30000.0)            # speculative remainder
    assert abs(report.total_cycles_with_overheads - expected) < 1e-6
    assert report.total_speedup < report.tls_speedup


def test_no_plans_means_fully_profiled_run():
    report = make_report(plans=False)
    assert report.profile_fraction == 1.0
    assert report.total_cycles_with_overheads == 1000 + 110000.0


def test_phase_cycles_partition():
    report = make_report(threads=1000)
    phases = report.phase_cycles()
    assert abs(sum(phases.values()) - report.total_cycles_with_overheads) \
        < 1.0
    assert phases["compile"] == 1000
    assert phases["recompile"] == 500


def test_outputs_match_exact_ints():
    report = make_report()
    report.sequential.output = [1, 2, 3]
    report.tls.output = [1, 2, 3]
    assert report.outputs_match()
    report.tls.output = [1, 2, 4]
    assert not report.outputs_match()


def test_outputs_match_float_tolerance():
    report = make_report()
    report.sequential.output = [1.0000000, 5]
    report.tls.output = [1.0000000001, 5]
    assert report.outputs_match()
    report.tls.output = [1.01, 5]
    assert not report.outputs_match()


def test_outputs_match_length_mismatch():
    report = make_report()
    report.sequential.output = [1]
    report.tls.output = [1, 2]
    assert not report.outputs_match()


def test_breakdown_fractions_sum_to_one():
    breakdown = TlsStateBreakdown()
    breakdown.serial = 10
    breakdown.run_used = 70
    breakdown.wait_used = 5
    breakdown.overhead = 10
    breakdown.run_violated = 4
    breakdown.wait_violated = 1
    fractions = breakdown.fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-12
    assert breakdown.total == 100


def test_breakdown_add():
    a = TlsStateBreakdown()
    a.run_used = 10
    a.commits = 2
    b = TlsStateBreakdown()
    b.run_used = 5
    b.violations = 1
    a.add(b)
    assert a.run_used == 15
    assert a.commits == 2 and a.violations == 1
