"""CFG construction, dominators, and natural-loop detection."""

from repro.hydra.config import HydraConfig
from repro.jit.annotate import identify_loops
from repro.jit.cfg import (build_cfg, compute_dominators, find_natural_loops,
                           loop_nest_depth)
from repro.jit.compiler import compile_program
from repro.jit.ir import IRInstr, IROp, Label, label_instr
from repro.minijava import compile_source

from conftest import wrap_main


def ir_of(src, method="Main.main"):
    program = compile_source(src)
    compiled = compile_program(program, HydraConfig())
    return compiled.methods[method].ir


def test_straight_line_is_one_block():
    code = [IRInstr(IROp.LI, dst=1, imm=1),
            IRInstr(IROp.ADDI, dst=1, a=1, imm=2),
            IRInstr(IROp.RET, a=1)]
    cfg = build_cfg(code)
    assert len(cfg.blocks) == 1
    assert cfg.blocks[0].succs == []


def test_branch_splits_blocks():
    target = Label()
    code = [IRInstr(IROp.BEQZ, a=1, target=target),
            IRInstr(IROp.LI, dst=2, imm=1),
            label_instr(target),
            IRInstr(IROp.RET, a=2)]
    cfg = build_cfg(code)
    assert len(cfg.blocks) == 3
    assert sorted(cfg.blocks[0].succs) == [1, 2]
    assert cfg.blocks[1].succs == [2]


def test_dominators_linear_chain():
    target = Label()
    code = [IRInstr(IROp.BEQZ, a=1, target=target),
            IRInstr(IROp.LI, dst=2, imm=1),
            label_instr(target),
            IRInstr(IROp.RET, a=2)]
    cfg = build_cfg(code)
    dom = compute_dominators(cfg)
    assert dom[0] == {0}
    assert 0 in dom[1] and 0 in dom[2]
    assert 1 not in dom[2]    # the join is not dominated by the branch arm


def test_simple_loop_detected():
    ir = ir_of(wrap_main("""
        int s = 0;
        for (int i = 0; i < 10; i++) { s += i; }
        return s;
    """))
    cfg = build_cfg(ir.code)
    loops = find_natural_loops(cfg)
    assert len(loops) == 1
    loop = loops[0]
    assert loop.depth == 1
    assert loop.backedges and loop.entries and loop.exits


def test_nested_loops_have_parent_links():
    ir = ir_of(wrap_main("""
        int s = 0;
        for (int i = 0; i < 4; i++) {
            for (int j = 0; j < 4; j++) { s += i * j; }
        }
        return s;
    """))
    cfg = build_cfg(ir.code)
    loops = find_natural_loops(cfg)
    assert len(loops) == 2
    inner = min(loops, key=lambda lp: len(lp.blocks))
    outer = max(loops, key=lambda lp: len(lp.blocks))
    assert inner.parent is outer
    assert inner.depth == 2 and outer.depth == 1
    assert loop_nest_depth(loops) == 2


def test_triple_nesting_depth():
    ir = ir_of(wrap_main("""
        int s = 0;
        for (int i = 0; i < 2; i++)
            for (int j = 0; j < 2; j++)
                for (int k = 0; k < 2; k++)
                    s++;
        return s;
    """))
    cfg = build_cfg(ir.code)
    loops = find_natural_loops(cfg)
    assert loop_nest_depth(loops) == 3


def test_sibling_loops_not_nested():
    ir = ir_of(wrap_main("""
        int s = 0;
        for (int i = 0; i < 3; i++) { s += i; }
        for (int j = 0; j < 3; j++) { s -= j; }
        return s;
    """))
    cfg = build_cfg(ir.code)
    loops = find_natural_loops(cfg)
    assert len(loops) == 2
    assert all(loop.parent is None for loop in loops)


def test_while_loop_with_break_has_two_exits():
    ir = ir_of(wrap_main("""
        int i = 0;
        while (i < 100) {
            if (i == 7) { break; }
            i++;
        }
        return i;
    """))
    cfg = build_cfg(ir.code)
    loops = find_natural_loops(cfg)
    assert len(loops) == 1
    exit_targets = {succ for __, succ in loops[0].exits}
    assert len(exit_targets) >= 1
    assert len(loops[0].exits) >= 2


def test_do_while_loop_detected():
    ir = ir_of(wrap_main("""
        int i = 0;
        do { i++; } while (i < 5);
        return i;
    """))
    cfg = build_cfg(ir.code)
    loops = find_natural_loops(cfg)
    assert len(loops) == 1


def test_identify_loops_ordinals_are_stable():
    src = wrap_main("""
        int s = 0;
        for (int i = 0; i < 3; i++) { s += i; }
        for (int j = 0; j < 4; j++) { s *= 2; }
        return s;
    """)
    first = identify_loops(ir_of(src))[1]
    second = identify_loops(ir_of(src))[1]
    assert [ordinal for ordinal, __ in first] == \
        [ordinal for ordinal, __ in second]
    starts_a = [loop.header for __, loop in first]
    starts_b = [loop.header for __, loop in second]
    assert starts_a == starts_b
