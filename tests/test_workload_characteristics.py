"""Cross-checks that each workload exhibits the structural property the
paper attributes to it (these are what make the Table 3/4 experiments
meaningful, so they are guarded here at the small size)."""

import pytest

from repro.core.pipeline import Jrpm
from repro.hydra.config import HydraConfig
from repro.jit.patterns import KIND_GENERAL, KIND_REDUCTION, KIND_RESETABLE
from repro.minijava import compile_source
from repro.workloads import lookup

#: whole-workload profiling sweeps — excluded from the fast tier
pytestmark = pytest.mark.slow


def profile(name, size="small"):
    """Steps 1-3 of the pipeline via the staged Jrpm API."""
    jrpm = Jrpm(config=HydraConfig())
    artifact = jrpm.profile(compile_source(lookup(name).source(size)))
    plans = jrpm.select(artifact)
    return artifact.annotated, artifact.profiler, plans


def all_kinds(annotated):
    kinds = []
    for meta in annotated.loop_table.values():
        kinds.extend(info.kind for info in meta.carried_kinds.values())
    return kinds


def test_bitops_has_resetable_inductor():
    annotated, __, plans = profile("BitOps")
    assert KIND_RESETABLE in all_kinds(annotated)


def test_montecarlo_gets_sync_lock():
    __, __p, plans = profile("monteCarlo")
    assert any(plan.sync is not None for plan in plans.values())


def test_mp3_gets_multilevel_inner():
    __, __p, plans = profile("mp3", size="default")
    assert any(plan.multilevel_inner for plan in plans.values())


def test_compress_dictionary_is_serial():
    annotated, profiler, plans = profile("compress")
    # The main LZW loop carries 'prefix' and the dictionary: its arcs
    # are frequent and long, so the selector must reject it (frequent
    # short arcs elsewhere may be admitted behind a sync lock instead).
    rejected_serial = [
        lid for lid, stats in profiler.stats.items()
        if stats.threads > 500 and stats.arc_frequency > 0.9
        and lid not in plans]
    assert rejected_serial, "the dictionary loop should be rejected"
    for lid, plan in plans.items():
        stats = profiler.stats[lid]
        if stats.arc_frequency > 0.9:
            assert plan.sync is not None


def test_fft_overflow_pressure_at_large_size():
    artifact = Jrpm().profile(
        compile_source(lookup("fft").source("large")))
    # The outer butterfly structure produces large per-iteration state
    # somewhere in the nest (the paper's fft buffer-overflow effect).
    assert any(stats.max_load_lines > 64 or stats.overflow_frequency > 0
               for stats in artifact.stats.values())


def test_jess_and_raytrace_allocate_in_loops():
    for name in ("jess", "raytrace"):
        program = compile_source(lookup(name).source("small"))
        config = HydraConfig()
        from repro.jit.compiler import compile_program
        from repro.hydra.machine import Machine as M
        compiled = compile_program(program, config)
        machine = M(compiled, config)
        machine.run()
        # Hundreds of objects allocated -> allocator pressure exists.
        assert machine.allocator.bytes_allocated > 3000, name


def test_reductions_appear_across_suite():
    reduction_count = 0
    for name in ("moldyn", "Huffman", "raytrace", "euler"):
        annotated, __, __p = profile(name)
        if KIND_REDUCTION in all_kinds(annotated):
            reduction_count += 1
    assert reduction_count >= 3


def test_idea_blocks_fully_parallel():
    __, profiler, plans = profile("IDEA")
    best = max(plans.values(), key=lambda p: p.prediction.coverage_cycles)
    assert best.prediction.arc_frequency < 0.1
    assert best.prediction.speedup > 3.0


def test_mips_interpreter_state_is_carried():
    annotated, profiler, __ = profile("MipsSimulator")
    kinds = all_kinds(annotated)
    assert KIND_GENERAL in kinds or KIND_RESETABLE in kinds


def test_deltablue_chains_parallel_but_propagation_serial():
    annotated, profiler, plans = profile("deltaBlue")
    # The chain loop is selected; the in-chain propagation loop either
    # conflicts or is rejected for its serial dependency.
    assert plans
    stats_by_arcs = sorted(profiler.stats.values(),
                           key=lambda s: -s.arc_frequency)
    assert stats_by_arcs[0].arc_frequency > 0.5
