"""microJIT optimizer: semantics preserved, redundancy removed."""

from repro.hydra.config import HydraConfig
from repro.jit.compiler import compile_program
from repro.jit.ir import IRInstr, IRMethod, IROp
from repro.jit.optimize import liveness, optimize
from repro.jit.cfg import build_cfg
from repro.minijava import compile_source

from conftest import assert_same_behavior, wrap_main


def build(instrs, nregs=16):
    method = IRMethod("t", 0, True, nregs)
    method.code = list(instrs)
    return method


def test_constant_folding():
    method = build([
        IRInstr(IROp.LI, dst=1, imm=6),
        IRInstr(IROp.LI, dst=2, imm=7),
        IRInstr(IROp.MUL, dst=3, a=1, b=2),
        IRInstr(IROp.RET, a=3),
    ])
    optimize(method)
    li = [i for i in method.code if i.op == IROp.LI and i.dst == 3]
    assert li and li[0].imm == 42
    assert not any(i.op == IROp.MUL for i in method.code)


def test_copy_propagation_removes_movs():
    method = build([
        IRInstr(IROp.LI, dst=1, imm=5),
        IRInstr(IROp.MOV, dst=2, a=1),
        IRInstr(IROp.MOV, dst=3, a=2),
        IRInstr(IROp.ADDI, dst=4, a=3, imm=1),
        IRInstr(IROp.RET, a=4),
    ])
    optimize(method)
    movs = [i for i in method.code if i.op == IROp.MOV]
    assert not movs


def test_dead_code_removed():
    method = build([
        IRInstr(IROp.LI, dst=1, imm=5),
        IRInstr(IROp.LI, dst=2, imm=9),    # dead
        IRInstr(IROp.RET, a=1),
    ])
    optimize(method)
    assert not any(i.op == IROp.LI and i.dst == 2 for i in method.code)


def test_side_effecting_ops_never_removed():
    method = build([
        IRInstr(IROp.LI, dst=1, imm=0x1000),
        IRInstr(IROp.SW, a=1, b=None, imm=0x2000),
        IRInstr(IROp.LI, dst=2, imm=0),
        IRInstr(IROp.RET, a=2),
    ])
    optimize(method)
    assert any(i.op == IROp.SW for i in method.code)


def test_add_with_constant_becomes_addi():
    method = build([
        IRInstr(IROp.LI, dst=1, imm=8),
        IRInstr(IROp.MOV, dst=2, a=0),
        IRInstr(IROp.LW, dst=2, a=None, imm=0x1000),
        IRInstr(IROp.ADD, dst=3, a=2, b=1),
        IRInstr(IROp.RET, a=3),
    ])
    optimize(method)
    assert any(i.op == IROp.ADDI and i.imm == 8 for i in method.code)


def test_cse_reuses_address_computation():
    method = build([
        IRInstr(IROp.LW, dst=1, a=None, imm=0x1000),
        IRInstr(IROp.SLLI, dst=2, a=1, imm=2),
        IRInstr(IROp.SLLI, dst=3, a=1, imm=2),   # same computation
        IRInstr(IROp.ADD, dst=4, a=2, b=3),
        IRInstr(IROp.RET, a=4),
    ])
    optimize(method)
    sllis = [i for i in method.code if i.op == IROp.SLLI]
    assert len(sllis) == 1


def test_optimizer_shrinks_real_code():
    program = compile_source(wrap_main("""
        int s = 0;
        for (int i = 0; i < 10; i++) {
            s += i * 2 + 1;
        }
        return s;
    """))
    config = HydraConfig()
    compiled = compile_program(program, config)
    # The slot-pinned translator emits many MOVs; after optimization the
    # loop body should have none of the trivial ones left.
    code = compiled.methods["Main.main"].code
    movs = [i for i in code if i.op == IROp.MOV and i.a == i.dst]
    assert not movs


def test_liveness_params_live_at_entry():
    method = build([
        IRInstr(IROp.ADD, dst=3, a=1, b=2),
        IRInstr(IROp.RET, a=3),
    ])
    cfg = build_cfg(method.code)
    live_in, __ = liveness(cfg)
    assert {1, 2} <= live_in[0]


def test_liveness_through_branches():
    from repro.jit.ir import Label, label_instr
    merge = Label()
    method = build([
        IRInstr(IROp.BEQZ, a=1, target=merge),
        IRInstr(IROp.LI, dst=2, imm=1),
        label_instr(merge),
        IRInstr(IROp.RET, a=2),
    ])
    cfg = build_cfg(method.code)
    live_in, live_out = liveness(cfg)
    # r2 is live into the branch (the taken path returns it unchanged).
    assert 2 in live_in[0]


OPTIMIZER_SEMANTICS_CASES = [
    wrap_main("""
        int x = 3;
        int y = x;          // copy chain
        int z = y + y;
        int w = y + y;      // CSE candidate
        Sys.printInt(z + w);
        return z;
    """),
    wrap_main("""
        int t = 0;
        for (int i = 0; i < 9; i++) {
            int unused = i * 100;
            t += (i << 2) + (i << 2);
        }
        Sys.printInt(t);
        return t;
    """),
    wrap_main("""
        int a = 7 * 6;      // folds
        int b = a - 2;
        int c = (b / 4) % 3;
        Sys.printInt(a); Sys.printInt(b); Sys.printInt(c);
        return c;
    """),
]


def test_optimizer_preserves_semantics():
    for src in OPTIMIZER_SEMANTICS_CASES:
        assert_same_behavior(src)
