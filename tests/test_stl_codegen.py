"""STL recompiler: descriptor structure and host rewrite."""

from repro.hydra.config import HydraConfig
from repro.hydra.machine import Machine
from repro.jit.compiler import compile_annotated
from repro.jit.ir import IROp
from repro.jit.stl import StlOptions, recompile_with_stls
from repro.minijava import compile_source
from repro.tracer import Selector, TestProfiler

from conftest import wrap_main


def plan_and_recompile(src, options=None, config=None):
    config = config or HydraConfig()
    program = compile_source(src)
    annotated = compile_annotated(program, config)
    profiler = TestProfiler(config, annotated.loop_table)
    Machine(annotated, config, profiler=profiler).run()
    selector = Selector(config, annotated.loop_table)
    plans = selector.select(profiler.stats, profiler.dynamic_nesting)
    compiled = recompile_with_stls(program, config, plans,
                                   options or StlOptions())
    return plans, compiled


SIMPLE = wrap_main("""
    int[] a = new int[400];
    int s = 0;
    for (int i = 0; i < 400; i++) {
        a[i] = i * 3;
        s += a[i] & 7;
    }
    Sys.printInt(s);
    return s;
""")

# A rarely-written, read+written carried local: stays general (no sync,
# arcs too rare) and must be communicated through a stack slot.
CARRIED = wrap_main("""
    int[] a = new int[500];
    int last = 1;
    for (int i = 0; i < 500; i++) {
        a[i] = (i * 97) %% 256;
        if (a[i] > 250) { last = last * 2 + i; }
    }
    Sys.printInt(last);
    return last;
""".replace("%%", "%"))

# A short, every-iteration carried dependency ahead of a longer body:
# the selector inserts a thread synchronizing lock (paper Fig. 6).
SYNCED = wrap_main("""
    int seed = 3;
    int acc = 0;
    for (int i = 0; i < 600; i++) {
        seed = (seed * 48271 + 11) & 0x7FFFFFFF;
        int w = seed %% 64;
        int v = (w * w + w) %% 101;
        acc = (acc + v) & 0xFFFF;
    }
    Sys.printInt(acc);
    Sys.printInt(seed);
    return acc;
""".replace("%%", "%"))


def descriptor_of(compiled, method="Main.main"):
    stls = compiled.methods[method].stls
    assert stls
    return next(iter(stls.values()))


def test_host_contains_stl_run():
    __, compiled = plan_and_recompile(SIMPLE)
    ops = [i.op for i in compiled.methods["Main.main"].code]
    assert IROp.STL_RUN in ops


def test_descriptor_shape():
    __, compiled = plan_and_recompile(SIMPLE)
    desc = descriptor_of(compiled)
    assert desc.thread_code
    assert 0 < desc.warm_entry < len(desc.thread_code)
    assert desc.fp_reg != desc.iter_reg
    assert desc.num_exits >= 1
    assert desc.frame_words >= 1


def test_thread_code_ends_in_eoi_or_exit():
    __, compiled = plan_and_recompile(SIMPLE)
    desc = descriptor_of(compiled)
    terminators = {i.op for i in desc.thread_code
                   if i.op in (IROp.STL_EOI_END, IROp.STL_EXIT)}
    assert IROp.STL_EOI_END in terminators
    assert IROp.STL_EXIT in terminators


def test_inductor_not_communicated():
    __, compiled = plan_and_recompile(SIMPLE)
    desc = descriptor_of(compiled)
    # i is an inductor and s a reduction: no general slots expected.
    assert not desc.general_slots
    assert desc.reductions


def test_inductor_cold_init_uses_iteration_register():
    __, compiled = plan_and_recompile(SIMPLE)
    desc = descriptor_of(compiled)
    cold = desc.thread_code[:desc.warm_entry]
    assert any(i.op == IROp.MUL and desc.iter_reg in (i.a, i.b)
               for i in cold)


def test_general_carried_local_gets_slot_and_def_site_store():
    __, compiled = plan_and_recompile(CARRIED)
    desc = descriptor_of(compiled)
    assert desc.general_slots
    slot_offsets = set(desc.general_slots.values())
    stores = [i for i in desc.thread_code
              if i.op == IROp.SW and i.b == desc.fp_reg
              and i.imm in slot_offsets]
    assert stores, "no def-site store of the carried local"
    warm_loads = [i for i in desc.thread_code[desc.warm_entry:]
                  if i.op == IROp.LW and i.a == desc.fp_reg
                  and i.imm in slot_offsets]
    assert warm_loads, "carried local never reloaded at warm entry"


def test_init_and_exit_values_cover_carried_state():
    __, compiled = plan_and_recompile(CARRIED)
    desc = descriptor_of(compiled)
    init_offsets = {off for off, __ in desc.init_values}
    assert set(desc.general_slots.values()) <= init_offsets
    # 'last' is printed after the loop: restored into the master.
    assert desc.exit_values


def test_disabling_inductors_makes_them_general():
    __, with_opt = plan_and_recompile(SIMPLE)
    __, without = plan_and_recompile(
        SIMPLE, options=StlOptions(noncomm_inductors=False))
    assert len(descriptor_of(without).general_slots) > \
        len(descriptor_of(with_opt).general_slots)


def test_disabling_reductions_makes_them_general():
    __, without = plan_and_recompile(
        SIMPLE, options=StlOptions(reductions=False))
    desc = descriptor_of(without)
    assert not desc.reductions
    assert desc.general_slots


def test_invariant_regalloc_off_moves_loads_to_warm():
    src = wrap_main("""
        int[] a = new int[300];
        int bias = 17;
        int s = 0;
        for (int i = 0; i < 300; i++) { s += a[i] + bias; }
        Sys.printInt(s);
        return s;
    """)
    __, with_opt = plan_and_recompile(src)
    __, without = plan_and_recompile(
        src, options=StlOptions(invariant_regalloc=False))
    desc_on = descriptor_of(with_opt)
    desc_off = descriptor_of(without)
    cold_loads_on = sum(1 for i in desc_on.thread_code[:desc_on.warm_entry]
                        if i.op == IROp.LW)
    cold_loads_off = sum(1 for i in desc_off.thread_code[:desc_off.warm_entry]
                         if i.op == IROp.LW)
    assert cold_loads_on > cold_loads_off


def test_sync_lock_emits_waitlock_and_signal():
    plans, compiled = plan_and_recompile(SYNCED)
    assert any(p.sync is not None for p in plans.values())
    desc = descriptor_of(compiled)
    ops = [i.op for i in desc.thread_code]
    assert IROp.WAITLOCK in ops
    assert IROp.SIGNAL in ops
    assert desc.sync_lock_off is not None


def test_resetable_emits_force_reset():
    src = wrap_main("""
        int pos = 0;
        int acc = 0;
        for (int i = 0; i < 900; i++) {
            acc = (acc + pos) & 0xFFFF;
            pos = pos + 11;
            if (pos > 850) { pos = i % 13; }
        }
        Sys.printInt(acc);
        Sys.printInt(pos);
        return acc;
    """)
    __, compiled = plan_and_recompile(src)
    desc = descriptor_of(compiled)
    assert desc.resetables
    assert any(i.op == IROp.FORCE_RESET for i in desc.thread_code)


def test_exit_dispatch_covers_all_exits():
    src = wrap_main("""
        int[] a = new int[600];
        for (int i = 0; i < 600; i++) { a[i] = (i * 29) % 512; }
        int found = -1;
        for (int i = 0; i < 600; i++) {
            if (a[i] == 400) { found = i; break; }
        }
        Sys.printInt(found);
        return found;
    """)
    __, compiled = plan_and_recompile(src)
    descs = [d for method in compiled.methods.values()
             for d in method.stls.values()]
    search = [d for d in descs if d.num_exits >= 2]
    assert search, "break loop should have two exits"
    exits = {i.aux for d in search for i in d.thread_code
             if i.op == IROp.STL_EXIT}
    assert exits == set(range(search[0].num_exits))
