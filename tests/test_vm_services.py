"""VM services: allocator free lists, parallel allocation, locks."""

from repro.core.pipeline import Jrpm, VmOptions
from repro.hydra.config import HydraConfig
from repro.hydra.machine import Machine
from repro.jit.compiler import compile_program
from repro.minijava import compile_source

from conftest import wrap_main

ALLOC_HEAVY = """
class Node { int v; Node(int x) { v = x; } }
class Main {
    static int main() {
        int s = 0;
        for (int i = 0; i < 500; i++) {
            Node n = new Node(i * 3);
            s += n.v & 7;
        }
        Sys.printInt(s);
        return s;
    }
}
"""

LOCK_HEAVY = """
class Meter {
    int total;
    synchronized void tick(int x) { total += x; }
}
class Main {
    static int main() {
        Meter m = new Meter();
        int[] a = new int[400];
        for (int i = 0; i < 400; i++) {
            a[i] = (i * 13) % 64;
            m.tick(1);
        }
        int s = m.total;
        for (int i = 0; i < 400; i++) { s += a[i]; }
        Sys.printInt(s);
        return s;
    }
}
"""


def test_allocator_reuses_freed_blocks():
    config = HydraConfig(gc_threshold_bytes=4 * 1024)
    compiled = compile_program(compile_source(ALLOC_HEAVY), config)
    machine = Machine(compiled, config)
    result = machine.run()
    assert result.guest_exception is None
    assert machine.gc.collections >= 1
    # With recycling, the bump pointer should stay well below
    # 500 * blocksize of fresh allocations.
    from repro.vm.heap import Allocator
    bump = machine.memory.load(Allocator.SHARED_BUMP)
    from repro.hydra.config import HEAP_BASE
    assert bump - HEAP_BASE < 500 * 16


def test_parallel_allocator_beats_shared_under_speculation():
    shared = Jrpm(vm_options=VmOptions(parallel_allocator=False)).run(
        compile_source(ALLOC_HEAVY))
    private = Jrpm(vm_options=VmOptions(parallel_allocator=True)).run(
        compile_source(ALLOC_HEAVY))
    assert shared.outputs_match() and private.outputs_match()
    if private.plans:
        # Paper §5.2: the shared free list serializes the STL (either
        # via violations or via a synchronizing lock TEST inserts on
        # the allocator dependency).
        assert private.tls.cycles < shared.tls.cycles


def test_speculation_aware_locks_beat_serializing_locks():
    aware = Jrpm(vm_options=VmOptions(speculation_aware_locks=True)).run(
        compile_source(LOCK_HEAVY))
    naive = Jrpm(vm_options=VmOptions(speculation_aware_locks=False)).run(
        compile_source(LOCK_HEAVY))
    assert aware.outputs_match() and naive.outputs_match()
    if aware.plans:
        assert aware.tls.cycles <= naive.tls.cycles


def test_reentrant_lock_does_not_deadlock():
    src = """
class R {
    int depth;
    synchronized int enter(int n) {
        if (n == 0) { return depth; }
        depth++;
        return enter(n - 1);
    }
}
class Main {
    static int main() {
        R r = new R();
        return r.enter(5);
    }
}
"""
    result = Machine(compile_program(compile_source(src), HydraConfig()),
                     HydraConfig()).run()
    assert result.return_value == 5


def test_static_synchronized_method():
    src = """
class S {
    static int count;
    static synchronized void bump() { count++; }
}
class Main {
    static int main() {
        for (int i = 0; i < 10; i++) { S.bump(); }
        return S.count;
    }
}
"""
    config = HydraConfig()
    result = Machine(compile_program(compile_source(src), config),
                     config).run()
    assert result.return_value == 10


def test_lock_statistics_recorded():
    config = HydraConfig()
    machine = Machine(compile_program(compile_source(LOCK_HEAVY), config),
                      config)
    machine.run()
    assert machine.locks.acquisitions >= 400


def test_negative_array_size_raises_guest_exception():
    result = Machine(
        compile_program(compile_source(wrap_main(
            "int n = -3; int[] a = new int[n]; return a.length;")),
            HydraConfig()),
        HydraConfig()).run()
    assert result.guest_exception is not None
    assert "NegativeArraySize" in result.guest_exception.kind
