"""Hydra hardware models: memory, caches, cost accounting."""

import pytest

from repro.errors import VMError
from repro.hydra.cache import MemoryHierarchy, SetAssociativeCache
from repro.hydra.config import HydraConfig
from repro.hydra.memory import Memory

from conftest import machine_run, wrap_main


class TestMemory:
    def test_load_default_zero(self):
        assert Memory().load(0x1000) == 0

    def test_store_load_roundtrip(self):
        memory = Memory()
        memory.store(0x2000, 42)
        memory.store(0x2004, -1.5)
        assert memory.load(0x2000) == 42
        assert memory.load(0x2004) == -1.5

    def test_rejects_null_address(self):
        with pytest.raises(VMError):
            Memory().load(0)

    def test_rejects_misaligned(self):
        with pytest.raises(VMError):
            Memory().store(0x1001, 1)

    def test_snapshot(self):
        memory = Memory()
        memory.store(0x100, 1)
        memory.store(0x108, 3)
        assert memory.snapshot(0x100, 3) == [1, 0, 3]


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(1024, 2)
        assert not cache.lookup(5)
        cache.fill(5)
        assert cache.lookup(5)

    def test_lru_eviction(self):
        cache = SetAssociativeCache(64, 1, line_bytes=32)  # 2 sets, direct
        cache.fill(0)          # set 0
        cache.fill(2)          # set 0 again -> evicts 0
        assert not cache.lookup(0)
        assert cache.lookup(2)

    def test_lru_order_respected(self):
        cache = SetAssociativeCache(128, 2, line_bytes=32)  # 2 sets, 2-way
        cache.fill(0)
        cache.fill(2)
        cache.lookup(0)       # touch 0, making 2 the LRU
        cache.fill(4)         # set 0: evicts 2
        assert cache.lookup(0)
        assert not cache.lookup(2)

    def test_invalidate(self):
        cache = SetAssociativeCache(1024, 4)
        cache.fill(9)
        cache.invalidate(9)
        assert not cache.lookup(9)

    def test_hit_miss_counters(self):
        cache = SetAssociativeCache(1024, 4)
        cache.lookup(1)
        cache.fill(1)
        cache.lookup(1)
        assert cache.misses == 1 and cache.hits == 1


class TestHierarchy:
    def test_latencies_follow_paper_figure2(self):
        config = HydraConfig()
        hierarchy = MemoryHierarchy(config)
        addr = 0x40_0000
        assert hierarchy.load_latency(0, addr) == config.memory_cycles
        assert hierarchy.load_latency(0, addr) == config.l1_hit_cycles
        # A different CPU misses its L1 but hits the shared L2.
        assert hierarchy.load_latency(1, addr) == config.l2_hit_cycles

    def test_store_invalidates_peer_l1(self):
        config = HydraConfig()
        hierarchy = MemoryHierarchy(config)
        addr = 0x40_0000
        hierarchy.load_latency(0, addr)
        hierarchy.load_latency(0, addr)       # now an L1 hit on CPU0
        hierarchy.store_latency(1, addr)      # CPU1 writes through
        assert hierarchy.load_latency(0, addr) == config.l2_hit_cycles

    def test_store_costs_one_cycle(self):
        hierarchy = MemoryHierarchy(HydraConfig())
        assert hierarchy.store_latency(0, 0x40_0000) == 1


class TestCostModel:
    def test_cache_locality_matters(self):
        sequential = machine_run(wrap_main("""
            int[] a = new int[2048];
            int s = 0;
            for (int i = 0; i < 2048; i++) { s += a[i]; }
            return s;
        """))
        strided = machine_run(wrap_main("""
            int[] a = new int[2048];
            int s = 0;
            for (int k = 0; k < 8; k++) {
                for (int i = k; i < 2048; i += 8) { s += a[i]; }
            }
            return s;
        """))
        # Same loads; the strided version re-touches lines it already
        # cached, the sequential one misses once per line: both should
        # be within ~2x, but the sequential first pass pays cold misses.
        assert sequential.instructions < strided.instructions
        assert sequential.cycles > 2048  # cold misses are visible

    def test_division_costs_more_than_addition(self):
        adds = machine_run(wrap_main("""
            int s = 1;
            for (int i = 1; i < 500; i++) { s = s + i; }
            return s;
        """))
        divs = machine_run(wrap_main("""
            int s = 1000000;
            for (int i = 1; i < 500; i++) { s = s / 1 + i; }
            return s;
        """))
        assert divs.cycles > adds.cycles + 2000

    def test_gc_triggers_and_is_accounted(self):
        config = HydraConfig(gc_threshold_bytes=8 * 1024)
        result = machine_run("""
class Blob { int a; int b; int c; }
class Main {
    static int main() {
        int s = 0;
        for (int i = 0; i < 2000; i++) {
            Blob b = new Blob();
            b.a = i;
            s += b.a;
        }
        return s;
    }
}
""", config=config)
        assert result.gc_cycles > 0

    def test_gc_reclaims_garbage(self):
        from repro.hydra.machine import Machine
        from repro.jit.compiler import compile_program
        from repro.minijava import compile_source
        config = HydraConfig(gc_threshold_bytes=8 * 1024)
        src = """
class Blob { int a; int b; int c; int d; int e; int f; }
class Main {
    static int main() {
        int s = 0;
        for (int i = 0; i < 1000; i++) {
            Blob b = new Blob();
            s += 1;
        }
        return s;
    }
}
"""
        compiled = compile_program(compile_source(src), config)
        machine = Machine(compiled, config)
        result = machine.run()
        assert result.return_value == 1000
        assert machine.gc.collections > 0
        assert machine.gc.objects_freed > 500
        # live objects should be far fewer than allocated
        assert len(machine.allocator.objects) < 1000
