"""TEST profiler: dependency arcs, buffer accounting, bank management."""

import pytest

from repro.hydra.config import HydraConfig
from repro.hydra.machine import Machine
from repro.jit.compiler import compile_annotated
from repro.minijava import compile_source
from repro.tracer import Selector, TestProfiler

from conftest import wrap_main


def profile(src, config=None):
    config = config or HydraConfig()
    program = compile_source(src)
    compiled = compile_annotated(program, config)
    profiler = TestProfiler(config, compiled.loop_table)
    machine = Machine(compiled, config, profiler=profiler)
    result = machine.run()
    return profiler, compiled, result


def single_stats(profiler):
    assert len(profiler.stats) >= 1
    return profiler.stats[min(profiler.stats)]


def test_thread_count_matches_iterations():
    profiler, __, __r = profile(wrap_main("""
        int s = 0;
        for (int i = 0; i < 50; i++) { s += i; }
        return s;
    """))
    stats = single_stats(profiler)
    # 50 body iterations + the final exit evaluation
    assert 50 <= stats.threads <= 51
    assert stats.entries == 1


def test_independent_loop_has_no_arcs():
    profiler, __, __r = profile(wrap_main("""
        int[] a = new int[100];
        for (int i = 0; i < 100; i++) { a[i] = i * 2; }
        return a[99];
    """))
    stats = max(profiler.stats.values(), key=lambda s: s.threads)
    assert stats.arc_frequency == 0.0


def test_serial_heap_chain_has_arcs_every_iteration():
    profiler, __, __r = profile(wrap_main("""
        int[] a = new int[100];
        a[0] = 1;
        for (int i = 1; i < 100; i++) { a[i] = a[i-1] + 3; }
        return a[99];
    """))
    stats = max(profiler.stats.values(), key=lambda s: s.threads)
    assert stats.arc_frequency > 0.9
    assert stats.avg_critical_constraint > 0


def test_carried_local_detected_via_lwl_swl():
    profiler, __, __r = profile(wrap_main("""
        int x = 1;
        int t = 0;
        for (int i = 0; i < 80; i++) {
            x = (x * 5 + 1) % 1000;
            t += x;
        }
        return t;
    """))
    stats = max(profiler.stats.values(), key=lambda s: s.threads)
    assert stats.arc_frequency > 0.9
    dominant = stats.dominant_arc()
    assert dominant is not None
    (store_site, load_site), arc = dominant
    assert load_site[0] == "local"


def test_buffer_usage_counted_in_lines():
    profiler, __, __r = profile(wrap_main("""
        int[] a = new int[800];
        int s = 0;
        for (int i = 0; i < 10; i++) {
            // each iteration reads 80 ints = 10 cache lines
            for (int j = 0; j < 80; j++) { s += a[i * 80 + j]; }
        }
        return s;
    """))
    outer = min(profiler.stats.values(), key=lambda s: s.threads)
    assert outer.avg_load_lines >= 9


def test_overflow_detected_with_tiny_buffers():
    config = HydraConfig(load_buffer_lines=4, store_buffer_lines=2)
    profiler, __, __r = profile(wrap_main("""
        int[] a = new int[400];
        int s = 0;
        for (int i = 0; i < 8; i++) {
            for (int j = 0; j < 50; j++) { a[i * 50 + j] = j; }
        }
        return s;
    """), config=config)
    outer = min(profiler.stats, key=lambda lid: profiler.stats[lid].threads)
    assert profiler.stats[outer].overflow_frequency > 0.5


def test_nested_loops_profiled_simultaneously():
    profiler, __, __r = profile(wrap_main("""
        int s = 0;
        for (int i = 0; i < 6; i++) {
            for (int j = 0; j < 9; j++) { s += i ^ j; }
        }
        return s;
    """))
    assert len(profiler.stats) == 2
    threads = sorted(stats.threads for stats in profiler.stats.values())
    assert threads[0] in (6, 7)           # outer
    assert threads[1] >= 54               # inner across entries


def test_dynamic_nesting_recorded_across_calls():
    profiler, __, __r = profile("""
class Main {
    static int inner(int n) {
        int s = 0;
        for (int j = 0; j < n; j++) { s += j; }
        return s;
    }
    static int main() {
        int t = 0;
        for (int i = 0; i < 5; i++) { t += inner(6); }
        return t;
    }
}
""")
    assert profiler.dynamic_nesting
    assert profiler.max_dynamic_depth == 2


def test_bank_limit_leaves_deep_loops_unprofiled():
    config = HydraConfig(comparator_banks=1)
    profiler, __, __r = profile(wrap_main("""
        int s = 0;
        for (int i = 0; i < 4; i++) {
            for (int j = 0; j < 4; j++) { s += i * j; }
        }
        return s;
    """), config=config)
    assert profiler.missed_allocations > 0
    # the inner loop got no bank while the outer held the only one
    unprofiled = [s for s in profiler.stats.values()
                  if s.unprofiled_entries > 0]
    assert unprofiled


def test_bank_stealing_on_consistent_overflow():
    config = HydraConfig(comparator_banks=1, load_buffer_lines=2,
                         store_buffer_lines=1)
    profiler, __, __r = profile(wrap_main("""
        int[] a = new int[4000];
        int s = 0;
        for (int i = 0; i < 10; i++) {
            for (int j = 0; j < 100; j++) {
                a[i * 100 + j] = i + j;
            }
            s += a[i];
        }
        return s;
    """), config=config)
    assert profiler.bank_steals > 0


def test_iterations_per_entry():
    profiler, __, __r = profile(wrap_main("""
        int s = 0;
        for (int i = 0; i < 5; i++) {
            for (int j = 0; j < 7; j++) { s++; }
        }
        return s;
    """))
    inner = max(profiler.stats.values(), key=lambda s: s.threads)
    assert 7.0 <= inner.iterations_per_entry <= 8.5


def test_profiler_events_counted():
    profiler, __, __r = profile(wrap_main("""
        int[] a = new int[16];
        for (int i = 0; i < 10; i++) { a[i] = i; }
        return a[3];
    """))
    # sloop + 10 EOIs + eloop + at least one memory event per iteration
    assert profiler.events > 20
