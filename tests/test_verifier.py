"""Bytecode verifier unit tests."""

import pytest

from repro.bytecode import (ClassDef, INT, Instr, Method, Op, Program, VOID,
                            verify_method, verify_program)
from repro.errors import VerifyError
from repro.minijava import compile_source


def build_method(code, max_locals=4, return_type=INT):
    program = Program()
    cls = program.add_class(ClassDef("T"))
    method = Method("m", cls, [], return_type, is_static=True)
    method.max_locals = max_locals
    method.code = code
    cls.add_method(method)
    program.seal()
    return program, method


def test_accepts_simple_return():
    program, method = build_method([
        Instr(Op.ICONST, 1), Instr(Op.RETURN_VALUE)])
    verify_method(program, method)


def test_rejects_missing_terminator():
    program, method = build_method([Instr(Op.ICONST, 1), Instr(Op.POP)])
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_stack_underflow():
    program, method = build_method([Instr(Op.POP), Instr(Op.RETURN)],
                                   return_type=VOID)
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_value_left_on_void_return():
    program, method = build_method([Instr(Op.ICONST, 1), Instr(Op.RETURN)],
                                   return_type=VOID)
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_value_return_from_void_method():
    program, method = build_method([
        Instr(Op.ICONST, 1), Instr(Op.RETURN_VALUE)], return_type=VOID)
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_out_of_range_local():
    program, method = build_method([
        Instr(Op.LOAD, 9), Instr(Op.RETURN_VALUE)], max_locals=2)
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_branch_out_of_range():
    program, method = build_method([
        Instr(Op.GOTO, 99), Instr(Op.ICONST, 0), Instr(Op.RETURN_VALUE)])
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_inconsistent_join_depth():
    # Path A pushes one value, path B pushes two, joining at pc 5.
    program, method = build_method([
        Instr(Op.LOAD, 0),          # 0
        Instr(Op.IFEQ, 4),          # 1 -> jump to 4 with depth 0
        Instr(Op.ICONST, 1),        # 2
        Instr(Op.ICONST, 2),        # 3: depth 2 falls into 4
        Instr(Op.ICONST, 3),        # 4: join with different depths
        Instr(Op.RETURN_VALUE),     # 5
    ])
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_unknown_field():
    program, method = build_method([
        Instr(Op.GETSTATIC, ("T", "missing")), Instr(Op.RETURN_VALUE)])
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_static_instance_mismatch():
    from repro.bytecode import Field
    program = Program()
    cls = program.add_class(ClassDef("T"))
    cls.add_field(Field("f", INT, is_static=False))
    method = Method("m", cls, [], INT, is_static=True)
    method.max_locals = 1
    method.code = [Instr(Op.GETSTATIC, ("T", "f")), Instr(Op.RETURN_VALUE)]
    cls.add_method(method)
    program.seal()
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_bad_intrinsic_arity():
    program, method = build_method([
        Instr(Op.ICONST, 1),
        Instr(Op.INTRINSIC, ("sqrt", 2)),
        Instr(Op.RETURN_VALUE)])
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_frontend_output_always_verifies():
    src = """
class Main {
    static int helper(int a, int b) {
        int best = a;
        if (b > a) { best = b; }
        while (best > 10) { best -= 3; }
        return best;
    }
    static int main() {
        int total = 0;
        for (int i = 0; i < 5; i++) {
            total += helper(i, i * 2) + (i % 2 == 0 ? 1 : -1);
        }
        return total;
    }
}
"""
    verify_program(compile_source(src))


def test_depths_returned_for_reachable_code():
    program, method = build_method([
        Instr(Op.ICONST, 1),
        Instr(Op.ICONST, 2),
        Instr(Op.IADD),
        Instr(Op.RETURN_VALUE)])
    depths = verify_method(program, method)
    assert depths == [0, 1, 2, 1]
