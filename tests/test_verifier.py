"""Bytecode verifier + bytecode-CFG unit tests."""

import pytest

from repro.bytecode import (ClassDef, INT, Instr, Method, Op, Program,
                            TRAP_OPS, VOID, back_edges, build_cfg,
                            compute_dominators, natural_loops,
                            reachable_blocks, verify_method, verify_program)
from repro.errors import VerifyError
from repro.minijava import compile_source


def build_method(code, max_locals=4, return_type=INT):
    program = Program()
    cls = program.add_class(ClassDef("T"))
    method = Method("m", cls, [], return_type, is_static=True)
    method.max_locals = max_locals
    method.code = code
    cls.add_method(method)
    program.seal()
    return program, method


def test_accepts_simple_return():
    program, method = build_method([
        Instr(Op.ICONST, 1), Instr(Op.RETURN_VALUE)])
    verify_method(program, method)


def test_rejects_missing_terminator():
    program, method = build_method([Instr(Op.ICONST, 1), Instr(Op.POP)])
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_stack_underflow():
    program, method = build_method([Instr(Op.POP), Instr(Op.RETURN)],
                                   return_type=VOID)
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_value_left_on_void_return():
    program, method = build_method([Instr(Op.ICONST, 1), Instr(Op.RETURN)],
                                   return_type=VOID)
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_value_return_from_void_method():
    program, method = build_method([
        Instr(Op.ICONST, 1), Instr(Op.RETURN_VALUE)], return_type=VOID)
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_out_of_range_local():
    program, method = build_method([
        Instr(Op.LOAD, 9), Instr(Op.RETURN_VALUE)], max_locals=2)
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_branch_out_of_range():
    program, method = build_method([
        Instr(Op.GOTO, 99), Instr(Op.ICONST, 0), Instr(Op.RETURN_VALUE)])
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_inconsistent_join_depth():
    # Path A pushes one value, path B pushes two, joining at pc 5.
    program, method = build_method([
        Instr(Op.LOAD, 0),          # 0
        Instr(Op.IFEQ, 4),          # 1 -> jump to 4 with depth 0
        Instr(Op.ICONST, 1),        # 2
        Instr(Op.ICONST, 2),        # 3: depth 2 falls into 4
        Instr(Op.ICONST, 3),        # 4: join with different depths
        Instr(Op.RETURN_VALUE),     # 5
    ])
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_unknown_field():
    program, method = build_method([
        Instr(Op.GETSTATIC, ("T", "missing")), Instr(Op.RETURN_VALUE)])
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_static_instance_mismatch():
    from repro.bytecode import Field
    program = Program()
    cls = program.add_class(ClassDef("T"))
    cls.add_field(Field("f", INT, is_static=False))
    method = Method("m", cls, [], INT, is_static=True)
    method.max_locals = 1
    method.code = [Instr(Op.GETSTATIC, ("T", "f")), Instr(Op.RETURN_VALUE)]
    cls.add_method(method)
    program.seal()
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_rejects_bad_intrinsic_arity():
    program, method = build_method([
        Instr(Op.ICONST, 1),
        Instr(Op.INTRINSIC, ("sqrt", 2)),
        Instr(Op.RETURN_VALUE)])
    with pytest.raises(VerifyError):
        verify_method(program, method)


def test_frontend_output_always_verifies():
    src = """
class Main {
    static int helper(int a, int b) {
        int best = a;
        if (b > a) { best = b; }
        while (best > 10) { best -= 3; }
        return best;
    }
    static int main() {
        int total = 0;
        for (int i = 0; i < 5; i++) {
            total += helper(i, i * 2) + (i % 2 == 0 ? 1 : -1);
        }
        return total;
    }
}
"""
    verify_program(compile_source(src))


def test_depths_returned_for_reachable_code():
    program, method = build_method([
        Instr(Op.ICONST, 1),
        Instr(Op.ICONST, 2),
        Instr(Op.IADD),
        Instr(Op.RETURN_VALUE)])
    depths = verify_method(program, method)
    assert depths == [0, 1, 2, 1]


# ---------------------------------------------------------------------------
# bytecode CFG — the substrate repro.analysis builds on
# ---------------------------------------------------------------------------

def simple_loop_method():
    """``for (i = 0; i < 10; i++) {}`` hand-assembled."""
    return build_method([
        Instr(Op.ICONST, 0),        # 0
        Instr(Op.STORE, 0),         # 1: i = 0
        Instr(Op.LOAD, 0),          # 2: header
        Instr(Op.ICONST, 10),       # 3
        Instr(Op.IF_ICMPGE, 8),     # 4: exit
        Instr(Op.IINC, (0, 1)),     # 5: i++
        Instr(Op.GOTO, 2),          # 6: back edge
        Instr(Op.ICONST, 0),        # 7: unreachable
        Instr(Op.LOAD, 0),          # 8
        Instr(Op.RETURN_VALUE),     # 9
    ], max_locals=1)


def test_cfg_blocks_partition_code():
    program, method = simple_loop_method()
    verify_method(program, method)
    cfg = build_cfg(method)
    covered = sorted(pc for block in cfg.blocks for pc in block.pcs())
    assert covered == list(range(len(method.code)))
    # every block's pc maps back to itself
    for block in cfg.blocks:
        for pc in block.pcs():
            assert cfg.block_of(pc) == block.bid


def test_unreachable_block_has_empty_dominators():
    program, method = simple_loop_method()
    verify_method(program, method)
    cfg = build_cfg(method)
    reach = reachable_blocks(cfg)
    dom = compute_dominators(cfg)
    dead = [b.bid for b in cfg.blocks if b.start == 7]
    assert dead and dead[0] not in reach
    assert dom[dead[0]] == frozenset()
    # reachable blocks all dominate themselves and contain the entry
    for bid in reach:
        assert bid in dom[bid]
        assert cfg.entry in dom[bid]


def test_back_edge_detection():
    program, method = simple_loop_method()
    verify_method(program, method)
    cfg = build_cfg(method)
    edges = back_edges(cfg)
    assert len(edges) == 1
    tail, head = edges[0]
    assert cfg.blocks[head].start == 2       # loop header at pc 2
    assert method.code[cfg.blocks[tail].end - 1].op == Op.GOTO


def test_unreachable_self_loop_is_not_a_back_edge():
    # dead block branching to itself: must produce no loop because its
    # dominator set is empty (mirrors the IR CFG discipline).
    program, method = build_method([
        Instr(Op.ICONST, 0),        # 0
        Instr(Op.RETURN_VALUE),     # 1
        Instr(Op.GOTO, 2),          # 2: dead self-loop
    ])
    verify_method(program, method)
    cfg = build_cfg(method)
    assert back_edges(cfg) == []
    assert natural_loops(cfg) == []


def test_natural_loop_body_and_exits():
    program, method = simple_loop_method()
    verify_method(program, method)
    cfg = build_cfg(method)
    loops = natural_loops(cfg)
    assert len(loops) == 1
    loop = loops[0]
    assert loop.ordinal == 0 and loop.depth == 1
    body_pcs = {pc for bid in loop.blocks
                for pc in cfg.blocks[bid].pcs()}
    assert body_pcs == {2, 3, 4, 5, 6}
    # one exit: the compare block jumping past the loop
    assert len(loop.exits) == 1
    (inside, outside), = loop.exits
    assert inside in loop.blocks and outside not in loop.blocks


def test_nested_loops_ordinals_and_depth():
    src = """
class Main {
    static int main() {
        int total = 0;
        for (int i = 0; i < 4; i++) {
            for (int j = 0; j < 4; j++) {
                total += i * j;
            }
        }
        return total;
    }
}
"""
    program = verify_program(compile_source(src))
    (method,) = [m for m in program.all_methods() if m.name == "main"]
    cfg = build_cfg(method)
    loops = natural_loops(cfg)
    assert len(loops) == 2
    outer, inner = loops          # ordered by header pc
    assert outer.ordinal == 0 and inner.ordinal == 1
    assert outer.depth == 1 and inner.depth == 2
    assert inner.parent is outer
    assert inner.blocks < outer.blocks


def test_trap_exits_mark_exception_edges():
    src = """
class Main {
    static int main() {
        int[] data = new int[8];
        int total = 0;
        for (int i = 0; i < 8; i++) {
            total += data[i] / (i + 1);
        }
        return total;
    }
}
"""
    program = verify_program(compile_source(src))
    (method,) = [m for m in program.all_methods() if m.name == "main"]
    cfg = build_cfg(method)
    (loop,) = natural_loops(cfg)
    ops = {method.code[pc].op for pc in loop.trap_exits}
    assert Op.IALOAD in ops and Op.IDIV in ops
    assert all(method.code[pc].op in TRAP_OPS for pc in loop.trap_exits)


def test_loop_ordinals_match_ir_annotator():
    """The load-bearing identity: bytecode loop (method, ordinal, line)
    must agree with the IR annotator's LoopMeta so repro.analysis can
    join the two worlds."""
    from repro.hydra.config import HydraConfig
    from repro.jit.compiler import compile_annotated
    from repro.workloads import lookup

    program = compile_source(lookup("BitOps").source("small"))
    artifact = compile_annotated(program, HydraConfig())
    ir_loops = {(meta.method_name, meta.ordinal): meta.line
                for meta in artifact.loop_table.values()}
    bc_loops = {}
    for method in program.all_methods():
        verify_method(program, method)
        cfg = build_cfg(method)
        for loop in natural_loops(cfg):
            header_line = method.code[cfg.blocks[loop.header].start].line
            bc_loops[(method.qualified_name, loop.ordinal)] = header_line
    assert ir_loops == bc_loops
