"""Carried-local classification (inductors, reductions, resetables)."""

import pytest

from repro.hydra.config import HydraConfig
from repro.jit.annotate import identify_loops
from repro.jit.compiler import compile_program
from repro.jit.patterns import (KIND_GENERAL, KIND_INDUCTOR, KIND_REDUCTION,
                                KIND_RESETABLE, classify_carried_locals,
                                merge_reduction)
from repro.minijava import compile_source

from conftest import wrap_main


def classify(src, loop_index=0):
    """Return {source-local-name-agnostic reg: CarriedLocal} for a loop."""
    program = compile_source(src)
    compiled = compile_program(program, HydraConfig())
    ir = compiled.methods["Main.main"].ir
    cfg, ordered = identify_loops(ir)
    loops = [loop for __, loop in ordered]
    loop = loops[loop_index]
    return classify_carried_locals(cfg, loop, ir.num_locals, loops)


def kinds_of(src, loop_index=0):
    return sorted(info.kind for info in classify(src, loop_index).values())


def test_unit_step_inductor():
    kinds = classify(wrap_main("""
        int s = 0;
        for (int i = 0; i < 10; i++) { s += i; }
        return s;
    """))
    by_kind = {info.kind: info for info in kinds.values()}
    assert by_kind[KIND_INDUCTOR].step_imm == 1
    assert by_kind[KIND_REDUCTION].reduce_op == "add"


def test_non_unit_step_inductor():
    kinds = classify(wrap_main("""
        int t = 0;
        for (int i = 3; i < 50; i += 7) { t ^= i; }
        return t;
    """))
    inductors = [i for i in kinds.values() if i.kind == KIND_INDUCTOR]
    assert inductors and inductors[0].step_imm == 7


def test_negative_step_inductor():
    kinds = classify(wrap_main("""
        int t = 0;
        for (int i = 50; i > 0; i -= 3) { t += i; }
        return t;
    """))
    inductors = [i for i in kinds.values() if i.kind == KIND_INDUCTOR]
    assert inductors and inductors[0].step_imm == -3


def test_invariant_register_step():
    kinds = classify(wrap_main("""
        int step = 4;
        int t = 0;
        for (int i = 0; i < 40; i = i + step) { t += 1; }
        return t;
    """))
    assert any(i.kind == KIND_INDUCTOR and i.step_reg is not None
               for i in kinds.values())


def test_conditional_increment_is_not_inductor():
    kinds = classify(wrap_main("""
        int count = 0;
        for (int i = 0; i < 20; i++) {
            if (i % 3 == 0) { count++; }
        }
        return count;
    """))
    # count is accumulated conditionally -> a reduction, not an inductor.
    counts = [info for reg, info in kinds.items()
              if info.kind == KIND_REDUCTION and info.reduce_op == "add"]
    assert counts


def test_product_reduction():
    kinds = classify(wrap_main("""
        int p = 1;
        for (int i = 1; i < 10; i++) { p = p * i; }
        return p;
    """))
    assert any(info.kind == KIND_REDUCTION and info.reduce_op == "mul"
               for info in kinds.values())


def test_float_constant_step_is_float_inductor():
    kinds = classify(wrap_main("""
        float s = 0.0;
        for (int i = 0; i < 10; i++) { s = s + 1.5; }
        return (int) s;
    """))
    assert any(info.kind == KIND_INDUCTOR and info.is_float
               and info.step_imm == 1.5 for info in kinds.values())


def test_float_sum_reduction():
    kinds = classify(wrap_main("""
        float[] x = new float[10];
        float s = 0.0;
        for (int i = 0; i < 10; i++) { s = s + x[i]; }
        return (int) s;
    """))
    assert any(info.kind == KIND_REDUCTION and info.reduce_op == "fadd"
               for info in kinds.values())


def test_minmax_reduction_via_intrinsic():
    kinds = classify(wrap_main("""
        int best = -9999;
        for (int i = 0; i < 10; i++) {
            best = Math.imax(best, (i * 7) % 13);
        }
        return best;
    """))
    assert any(info.kind == KIND_REDUCTION and info.reduce_op == "imax"
               for info in kinds.values())


def test_masked_add_reduction():
    kinds = classify(wrap_main("""
        int check = 0;
        for (int i = 0; i < 10; i++) {
            check = (check + i * 3) & 0xFFFF;
        }
        return check;
    """))
    masked = [info for info in kinds.values()
              if info.kind == KIND_REDUCTION and info.reduce_op == "addmask"]
    assert masked and masked[0].mask == 0xFFFF


def test_non_power_of_two_mask_is_not_reduction():
    kinds = classify(wrap_main("""
        int check = 0;
        for (int i = 0; i < 10; i++) {
            check = (check + i) & 0xFFF0;
        }
        return check;
    """))
    assert not any(info.kind == KIND_REDUCTION
                   for reg, info in kinds.items()
                   if info.reduce_op == "addmask")


def test_accumulator_read_elsewhere_is_general():
    kinds = classify(wrap_main("""
        int[] a = new int[20];
        int s = 0;
        for (int i = 0; i < 10; i++) {
            s += i;
            a[s % 20] = i;   // s escapes the accumulation chain
        }
        return s;
    """))
    assert any(info.kind == KIND_GENERAL for info in kinds.values())
    assert not any(info.kind == KIND_REDUCTION and info.reduce_op == "add"
                   for info in kinds.values())


def test_resetable_inductor():
    kinds = classify(wrap_main("""
        int pos = 0;
        int t = 0;
        for (int i = 0; i < 100; i++) {
            t += pos;
            pos = pos + 2;
            if (pos > 90) { pos = i % 7; }
        }
        return t + pos;
    """))
    resetables = [info for info in kinds.values()
                  if info.kind == KIND_RESETABLE]
    assert resetables
    assert resetables[0].step_imm == 2
    assert resetables[0].reset_sites


def test_serial_recurrence_is_general():
    kinds = classify(wrap_main("""
        int x = 1;
        for (int i = 0; i < 10; i++) { x = x * 3 + 1; }
        return x;
    """))
    assert any(info.kind == KIND_GENERAL for info in kinds.values())


def test_inductor_step_inside_inner_loop_is_not_inductor():
    # 'scan' steps a variable number of times per OUTER iteration, so
    # for the outer loop it must be general (its += sits in the inner
    # loop); for the inner loop it is a genuine unit-step inductor.
    src = wrap_main("""
        int t = 0;
        int scan = 0;
        for (int i = 0; i < 8; i++) {
            for (int j = 0; j < i; j++) {
                scan = scan + 1;
            }
            t += scan;
        }
        return t;
    """)
    outer = classify(src, loop_index=0)
    unit_inductors = [info for info in outer.values()
                      if info.kind == KIND_INDUCTOR and info.step_imm == 1]
    assert len(unit_inductors) == 1      # only i
    assert any(info.kind == KIND_GENERAL for info in outer.values())
    inner = classify(src, loop_index=1)
    assert sum(1 for info in inner.values()
               if info.kind == KIND_INDUCTOR and info.step_imm == 1) == 2


class TestMergeReduction:
    def test_add(self):
        assert merge_reduction("add", 3, 4) == 7

    def test_add_wraps(self):
        assert merge_reduction("add", 2**31 - 1, 1) == -2**31

    def test_mul(self):
        assert merge_reduction("mul", 3, 5) == 15

    def test_minmax(self):
        assert merge_reduction("imin", 3, -4) == -4
        assert merge_reduction("imax", 3, -4) == 3
        assert merge_reduction("fmin", 1.5, 2.5) == 1.5
        assert merge_reduction("fmax", 1.5, 2.5) == 2.5

    def test_bitwise(self):
        assert merge_reduction("and", 0b1100, 0b1010) == 0b1000
        assert merge_reduction("or", 0b1100, 0b1010) == 0b1110
        assert merge_reduction("xor", 0b1100, 0b1010) == 0b0110

    def test_addmask(self):
        assert merge_reduction("addmask", 0xFFFF, 2, mask=0xFFFF) == 1

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            merge_reduction("nope", 1, 2)
