"""The adaptive recompilation subsystem (repro.adapt).

Covers the policy layer with fabricated telemetry (hysteresis), the
adaptation-log schema and its validator, the per-STL wall-cycle
accounting that feeds realized speedups, plan-set round-trips through
serialization, and full controller runs: convergence on well-predicted
programs, decommit of mispredicted STLs, online lock escalation, and
promotion of previously shadowed candidates.
"""

import json

import pytest

from repro.adapt import (ACTION_DECOMMIT, ACTION_LOCK_ESCALATE,
                         ACTION_PROMOTE, AdaptDecision, AdaptState,
                         AdaptationLog, EpochRecord, EpochTelemetry,
                         NullPolicy, StlObservation, ThresholdPolicy,
                         make_policy, validate_log_dict)
from repro.core.pipeline import Jrpm, JrpmReport
from repro.hydra.config import HydraConfig
from repro.minijava import compile_source
from repro.tracer.selector import Prediction, StlPlan, SyncPlan

from conftest import interp, wrap_main

# ---------------------------------------------------------------------------
# fabricated-telemetry helpers
# ---------------------------------------------------------------------------


def _plan(loop_id, speedup=2.0, sync=None):
    prediction = Prediction(loop_id=loop_id, speedup=speedup,
                            interval=50.0, coverage_cycles=10_000,
                            avg_thread_cycles=100.0,
                            iterations_per_entry=100.0,
                            overflow_frequency=0.0, arc_frequency=0.1)
    return StlPlan(loop_id=loop_id, meta=None, prediction=prediction,
                   sync=sync)


def _telemetry(epoch, loop_id, realized, violations=0, threads=100,
               plan=None):
    observation = StlObservation(
        loop_id=loop_id, entries=1, threads_committed=threads,
        work_cycles=realized * 1000.0, wall_cycles=1000.0,
        violations=violations,
        predicted_speedup=plan.prediction.speedup if plan else 2.0,
        has_sync=bool(plan and plan.sync))
    telemetry = EpochTelemetry(epoch=epoch, cycles=50_000.0)
    telemetry.per_stl[loop_id] = observation
    return telemetry


# ---------------------------------------------------------------------------
# policy units
# ---------------------------------------------------------------------------


def test_null_policy_never_decides():
    plan = _plan(1)
    state = AdaptState(plans={1: plan})
    telemetry = _telemetry(0, 1, realized=0.1, plan=plan)
    assert NullPolicy().decide(telemetry, state) == []


def test_threshold_policy_decommits_slow_stl():
    plan = _plan(1, speedup=3.0)
    state = AdaptState(plans={1: plan})
    telemetry = _telemetry(0, 1, realized=0.6, plan=plan)
    decisions = ThresholdPolicy(decommit_threshold=1.0).decide(
        telemetry, state)
    assert [d.action for d in decisions] == [ACTION_DECOMMIT]
    assert decisions[0].loop_id == 1
    assert decisions[0].evidence["realized_speedup"] == pytest.approx(
        0.6, abs=1e-3)


def test_threshold_policy_escalates_violation_storm():
    plan = _plan(1)
    state = AdaptState(plans={1: plan})
    telemetry = _telemetry(0, 1, realized=1.5, violations=60,
                           threads=100, plan=plan)
    decisions = ThresholdPolicy(violation_cutoff=0.25).decide(
        telemetry, state)
    assert [d.action for d in decisions] == [ACTION_LOCK_ESCALATE]


def test_threshold_policy_no_escalation_when_sync_present():
    sync = SyncPlan(store_site=("m", 1), load_site=("m", 2),
                    arc_frequency=0.9, avg_length=10.0)
    plan = _plan(1, sync=sync)
    state = AdaptState(plans={1: plan})
    telemetry = _telemetry(0, 1, realized=1.5, violations=60, plan=plan)
    assert ThresholdPolicy().decide(telemetry, state) == []


def test_threshold_policy_withholds_without_evidence():
    plan = _plan(1)
    state = AdaptState(plans={1: plan})
    telemetry = EpochTelemetry(epoch=0, cycles=1000.0)
    telemetry.per_stl[1] = StlObservation(loop_id=1)   # never entered
    assert ThresholdPolicy().decide(telemetry, state) == []


def test_threshold_policy_min_threads_gate():
    plan = _plan(1)
    state = AdaptState(plans={1: plan})
    telemetry = _telemetry(0, 1, realized=0.2, threads=2, plan=plan)
    assert ThresholdPolicy(min_threads=8).decide(telemetry, state) == []
    assert ThresholdPolicy(min_threads=1).decide(telemetry, state)


def test_make_policy_registry_and_knob_filtering():
    policy = make_policy("threshold", decommit_threshold=0.5,
                         violation_cutoff=None, bogus_knob=7)
    assert isinstance(policy, ThresholdPolicy)
    assert policy.decommit_threshold == 0.5
    assert policy.violation_cutoff == 0.25          # None -> default
    assert isinstance(make_policy("null"), NullPolicy)
    with pytest.raises(ValueError):
        make_policy("nonexistent")


# ---------------------------------------------------------------------------
# hysteresis: cooldown forbids flip-flopping the same STL
# ---------------------------------------------------------------------------


def test_cooldown_blocks_repeat_decision_within_window():
    plan = _plan(1)
    policy = ThresholdPolicy(cooldown=3)
    state = AdaptState(plans={1: plan})
    first = policy.decide(_telemetry(0, 1, realized=0.5, plan=plan),
                          state)
    assert len(first) == 1
    state.stamp(1, 0)                   # the controller applies + stamps
    # Oscillating statistics inside the cooldown window: silence.
    for epoch in (1, 2):
        telemetry = _telemetry(epoch, 1,
                               realized=0.5 if epoch % 2 else 2.0,
                               plan=plan)
        assert policy.decide(telemetry, state) == []
    # Window over: the policy may act again.
    after = policy.decide(_telemetry(3, 1, realized=0.5, plan=plan),
                          state)
    assert len(after) == 1


def test_cooldown_is_per_loop():
    plans = {1: _plan(1), 2: _plan(2)}
    policy = ThresholdPolicy(cooldown=2)
    state = AdaptState(plans=plans)
    state.stamp(1, 0)
    telemetry = EpochTelemetry(epoch=1, cycles=1000.0)
    for loop_id in (1, 2):
        telemetry.per_stl[loop_id] = StlObservation(
            loop_id=loop_id, entries=1, threads_committed=100,
            work_cycles=500.0, wall_cycles=1000.0,
            predicted_speedup=2.0)
    decisions = policy.decide(telemetry, state)
    assert [d.loop_id for d in decisions] == [2]    # loop 1 cooling down


def test_adapt_state_cooldown_window_arithmetic():
    state = AdaptState()
    state.stamp(7, epoch=2)
    assert state.in_cooldown(7, epoch=3, cooldown=2)
    assert not state.in_cooldown(7, epoch=4, cooldown=2)
    assert not state.in_cooldown(8, epoch=3, cooldown=2)


# ---------------------------------------------------------------------------
# observation math
# ---------------------------------------------------------------------------


def test_observation_realized_speedup_and_frequency():
    observation = StlObservation(loop_id=1, entries=2,
                                 threads_committed=50,
                                 work_cycles=3000.0, wall_cycles=1000.0,
                                 violations=10, predicted_speedup=3.5)
    assert observation.realized_speedup == pytest.approx(3.0)
    assert observation.violation_frequency == pytest.approx(0.2)
    assert observation.misprediction == pytest.approx(3.5 / 3.0)
    snapshot = observation.snapshot()
    assert snapshot["realized"] == pytest.approx(3.0)
    json.dumps(snapshot)                            # JSON-safe


def test_observation_withholds_until_run():
    observation = StlObservation(loop_id=1)
    assert observation.realized_speedup is None
    assert observation.misprediction is None
    assert observation.snapshot()["realized"] is None


# ---------------------------------------------------------------------------
# log schema: round-trip + validation
# ---------------------------------------------------------------------------


def _sample_log():
    log = AdaptationLog(name="sample", policy="threshold",
                        policy_params={"decommit_threshold": 1.0})
    d0 = AdaptDecision(epoch=0, loop_id=1, action=ACTION_DECOMMIT,
                       evidence={"realized_speedup": 0.5},
                       before_cycles=1000.0, after_cycles=800.0)
    log.record_epoch(EpochRecord(epoch=0, cycles=1000.0, plans=[1, 2],
                                 stl={1: {"realized": 0.5}}), [d0])
    log.record_epoch(EpochRecord(epoch=1, cycles=800.0, plans=[2]))
    log.converged_epoch = 1
    log.recompile_cycles = 250
    return log


def test_log_round_trip_is_lossless():
    log = _sample_log()
    data = log.to_dict()
    json.dumps(data)
    restored = AdaptationLog.from_dict(data)
    assert restored.to_dict() == data
    assert restored.epochs_run == 2
    assert restored.initial_cycles == 1000.0
    assert restored.final_cycles == 800.0
    assert restored.steady_state_gain == pytest.approx(1.25)
    assert restored.net_cycles_saved == pytest.approx(200.0)


def test_log_validator_accepts_sample():
    assert validate_log_dict(_sample_log().to_dict()) == []


@pytest.mark.parametrize("mutate, fragment", [
    (lambda d: d.update(schema=99), "schema"),
    (lambda d: d.update(epochs=[]), "non-empty"),
    (lambda d: d["epochs"][0].update(epoch=5), "position"),
    (lambda d: d["epochs"][0].update(cycles="fast"), "not numeric"),
    (lambda d: d["decisions"][0].update(action="explode"), "action"),
    (lambda d: d["decisions"][0].update(evidence=None), "evidence"),
    (lambda d: d.update(converged_epoch="early"), "converged_epoch"),
    (lambda d: d.pop("initial_cycles"), "initial_cycles"),
])
def test_log_validator_rejects_corruption(mutate, fragment):
    data = _sample_log().to_dict()
    mutate(data)
    problems = validate_log_dict(data)
    assert problems
    assert any(fragment in problem for problem in problems)


def test_decision_describe_mentions_failure_reason():
    decision = AdaptDecision(epoch=1, loop_id=3,
                             action=ACTION_LOCK_ESCALATE,
                             evidence={"skipped": "no arc"},
                             applied=False)
    assert "not applied" in decision.describe()
    assert "no arc" in decision.describe()


# ---------------------------------------------------------------------------
# plan serialization: adaptation state must round-trip (satellite 2)
# ---------------------------------------------------------------------------


def _meta(loop_id):
    from repro.jit.annotate import LoopMeta
    return LoopMeta(loop_id, "Main.main", 0, 1, 20, {}, True, None, 12)


def test_plan_round_trip_preserves_adaptation_fields():
    sync = SyncPlan(store_site=("Main.main", 12),
                    load_site=("local", 1, 0),
                    arc_frequency=0.8, avg_length=40.0,
                    local_slot=(1, 0))
    plan = _plan(4, sync=sync)
    plan.decommitted = True
    plan.sync_escalated = True
    plan.meta = _meta(4)
    data = plan.to_dict()
    json.dumps(data)
    assert data["decommitted"] is True
    assert data["sync_escalated"] is True
    restored = StlPlan.from_dict(data)
    assert restored.decommitted is True
    assert restored.sync_escalated is True
    assert restored.sync.local_slot == (1, 0)
    assert restored.sync.store_site == ("Main.main", 12)
    assert restored.to_dict() == data


def test_plan_from_dict_tolerates_pre_adaptation_schema():
    plan = _plan(4)
    plan.meta = _meta(4)
    data = plan.to_dict()
    del data["decommitted"]
    del data["sync_escalated"]
    restored = StlPlan.from_dict(data)
    assert restored.decommitted is False
    assert restored.sync_escalated is False


# ---------------------------------------------------------------------------
# StlRunStats lifetime (satellite 1): wall cycles + per-run freshness
# ---------------------------------------------------------------------------

PARALLEL = wrap_main("""
    int[] a = new int[900];
    for (int i = 0; i < 900; i++) { a[i] = (i * 31 + 7) % 257; }
    int s = 0;
    for (int i = 0; i < 900; i++) { s += a[i] & 63; }
    Sys.printInt(s);
    return s;
""")


@pytest.fixture(scope="module")
def staged():
    """One profile + recompile, reused across the tests below."""
    jrpm = Jrpm()
    program = compile_source(PARALLEL)
    baseline = jrpm.compile_baseline(program)
    profile = jrpm.profile(program)
    plans = jrpm.select(profile)
    recompiled = jrpm.recompile(program, plans)
    return jrpm, program, baseline, profile, plans, recompiled


def test_wall_cycles_accumulated_per_stl(staged):
    jrpm, _, baseline, _, plans, recompiled = staged
    artifact = jrpm.execute_tls(recompiled, plans,
                                fallback=baseline.measurement)
    assert plans
    for loop_id, stats in artifact.stl_stats.items():
        if stats.entries == 0:
            continue
        assert stats.wall_cycles > 0.0
        # wall time inside one STL cannot exceed the whole run
        assert stats.wall_cycles <= artifact.measurement.cycles
        realized = stats.cycles_total / stats.wall_cycles
        assert 0.0 < realized <= jrpm.config.num_cpus + 1e-9


def test_stl_run_stats_do_not_accumulate_across_runs(staged):
    """Regression: a reused Jrpm must produce identical per-invocation
    StlRunStats — epoch N's counters must not include epoch N-1's."""
    jrpm, _, baseline, _, plans, recompiled = staged
    first = jrpm.execute_tls(recompiled, plans,
                             fallback=baseline.measurement)
    second = jrpm.execute_tls(recompiled, plans,
                              fallback=baseline.measurement)
    assert first.measurement.cycles == second.measurement.cycles
    assert set(first.stl_stats) == set(second.stl_stats)
    for loop_id in first.stl_stats:
        a, b = first.stl_stats[loop_id], second.stl_stats[loop_id]
        assert a is not b           # fresh counters, not shared objects
        assert a.to_dict() == b.to_dict()


def test_stl_run_stats_wall_cycles_round_trip(staged):
    jrpm, _, baseline, _, plans, recompiled = staged
    artifact = jrpm.execute_tls(recompiled, plans,
                                fallback=baseline.measurement)
    from repro.tls.stats import StlRunStats
    for stats in artifact.stl_stats.values():
        data = stats.to_dict()
        assert "wall_cycles" in data
        assert StlRunStats.from_dict(data).to_dict() == data
        # pre-adaptation dicts (no wall_cycles) must still load
        del data["wall_cycles"]
        assert StlRunStats.from_dict(data).wall_cycles == 0.0


# ---------------------------------------------------------------------------
# controller end-to-end
# ---------------------------------------------------------------------------

SERIAL_DEP = """
class Main {
    static int main(int n) {
        int[] a = new int[n];
        int s = 7;
        for (int i = 0; i < n; i = i + 1) {
            s = (s * 3 + a[i]) % 1000003;
            a[(i * 7) % n] = s;
        }
        int t = 0;
        for (int i = 0; i < n; i = i + 1) { t = t + a[i]; }
        Sys.printInt(t);
        return t;
    }
}
"""


def _permissive_config():
    """Admission thresholds low enough that TEST misjudges the serial
    dependency loop as profitable (the deliberate misprediction)."""
    return HydraConfig(min_predicted_speedup=0.05,
                       min_iterations_per_entry=1.0)


def test_adaptation_beats_initial_selection_on_misprediction():
    """Acceptance: with a deliberately mispredicting profile the final
    epoch must be strictly cheaper than the initial selection, and the
    log must name the decisions that got it there."""
    jrpm = Jrpm(config=_permissive_config())
    report = jrpm.run_adaptive(SERIAL_DEP, name="serialdep",
                               args=(300,), epochs=4, verify=True)
    log = report.adaptation
    assert log is not None
    applied = log.applied_decisions()
    assert applied, "controller made no decisions on a misprediction"
    assert log.final_cycles < log.initial_cycles
    assert log.steady_state_gain > 1.0
    assert report.outputs_match()
    # decisions carry replayable evidence
    for decision in applied:
        assert decision.evidence
        assert decision.before_cycles is not None


def test_adaptation_decommits_under_aggressive_threshold():
    """decommit_threshold above any achievable speedup reverts every
    STL to sequential execution — and the program still runs right."""
    jrpm = Jrpm(config=_permissive_config())
    policy = ThresholdPolicy(decommit_threshold=100.0, promote=False)
    report = jrpm.run_adaptive(SERIAL_DEP, name="serialdep",
                               args=(200,), policy=policy, epochs=3,
                               verify=True)
    log = report.adaptation
    actions = [d.action for d in log.applied_decisions()]
    assert ACTION_DECOMMIT in actions
    assert not report.plans              # everything reverted
    assert all(plan is not None for plan in ())  # plans dict empty
    # final epoch fell back to the sequential baseline measurement
    assert log.final_cycles == report.sequential.cycles
    assert report.outputs_match()


def test_decommitted_plans_marked_and_logged():
    jrpm = Jrpm(config=_permissive_config())
    policy = ThresholdPolicy(decommit_threshold=100.0, promote=False)
    report = jrpm.run_adaptive(SERIAL_DEP, name="serialdep",
                               args=(200,), policy=policy, epochs=3)
    log = report.adaptation
    for decision in log.applied_decisions():
        if decision.action == ACTION_DECOMMIT:
            assert decision.evidence["plan"]["decommitted"] is True


def test_lock_escalation_synthesizes_sync_plan():
    jrpm = Jrpm(config=_permissive_config())
    report = jrpm.run_adaptive(SERIAL_DEP, name="serialdep",
                               args=(300,), epochs=4, verify=True)
    log = report.adaptation
    escalations = [d for d in log.applied_decisions()
                   if d.action == ACTION_LOCK_ESCALATE]
    if escalations:                     # behaviour-dependent, but when
        loop_id = escalations[0].loop_id            # it fires, check it
        plan = report.plans.get(loop_id)
        assert plan is not None
        assert plan.sync is not None
        assert plan.sync_escalated is True


def test_well_predicted_program_converges_without_decisions():
    report = Jrpm().run_adaptive(PARALLEL, name="parallel", epochs=4,
                                 verify=True)
    log = report.adaptation
    assert log.applied_decisions() == []
    assert log.converged_epoch == 0
    assert log.epochs_run == 1          # stop_on_converged
    assert report.outputs_match()


def test_null_policy_is_one_shot_equivalent():
    jrpm = Jrpm(config=_permissive_config())
    adaptive = jrpm.run_adaptive(SERIAL_DEP, name="serialdep",
                                 args=(200,), policy="null", epochs=3)
    one_shot = Jrpm(config=_permissive_config()).run(
        SERIAL_DEP, name="serialdep", args=(200,))
    assert adaptive.adaptation.applied_decisions() == []
    assert adaptive.tls.cycles == one_shot.tls.cycles
    assert sorted(adaptive.plans) == sorted(one_shot.plans)


NESTED = """
class Main {
    static int main(int n) {
        int[] a = new int[n];
        int s = 7;
        for (int r = 0; r < 6; r = r + 1) {
            for (int i = 0; i < n; i = i + 1) {
                s = (s * 3 + a[i] + r) % 1000003;
                a[(i * 7) % n] = s;
            }
        }
        int t = 0;
        for (int i = 0; i < n; i = i + 1) { t = t + a[i]; }
        Sys.printInt(t);
        return t;
    }
}
"""


def test_promotion_reselects_shadowed_candidates():
    """When a decommit unblocks the nest, re-selection may promote a
    previously conflicting loop level; either way, banned loops never
    come back."""
    jrpm = Jrpm(config=_permissive_config())
    report = jrpm.run_adaptive(NESTED, name="nested", args=(120,),
                               epochs=5, verify=True)
    log = report.adaptation
    banned = {d.loop_id for d in log.applied_decisions()
              if d.action == ACTION_DECOMMIT}
    promoted = {d.loop_id for d in log.applied_decisions()
                if d.action == ACTION_PROMOTE}
    assert banned.isdisjoint(promoted)
    assert banned.isdisjoint(report.plans)
    for decision in log.applied_decisions():
        if decision.action == ACTION_PROMOTE:
            assert decision.evidence["unblocked_by"]
    assert report.outputs_match()


def test_verify_flag_checks_against_baseline():
    # verify=True on a healthy run must not raise
    Jrpm().run_adaptive(PARALLEL, name="parallel", epochs=2,
                        verify=True)


# ---------------------------------------------------------------------------
# report integration: adaptation rides the report schema + rendering
# + trace events
# ---------------------------------------------------------------------------


def test_report_schema_round_trips_adaptation():
    jrpm = Jrpm(config=_permissive_config())
    report = jrpm.run_adaptive(SERIAL_DEP, name="serialdep",
                               args=(200,), epochs=3)
    assert report.adaptation is not None
    data = report.to_dict()
    # schema v3 introduced the adaptation block; later bumps keep it
    assert data["schema"] == JrpmReport.SCHEMA_VERSION >= 3
    json.dumps(data)
    restored = JrpmReport.from_dict(data)
    assert restored.adaptation is not None
    assert restored.to_dict() == data
    assert restored.adaptation.to_dict() == report.adaptation.to_dict()


def test_one_shot_report_has_no_adaptation():
    report = Jrpm().run(PARALLEL, name="parallel")
    assert report.adaptation is None
    data = report.to_dict()
    assert data["adaptation"] is None
    assert JrpmReport.from_dict(data).adaptation is None


def test_format_report_includes_adaptation_section():
    from repro.core.report import format_report
    jrpm = Jrpm(config=_permissive_config())
    report = jrpm.run_adaptive(SERIAL_DEP, name="serialdep",
                               args=(200,), epochs=3)
    text = format_report(report, verbose=True)
    assert "adaptation:" in text
    assert "policy threshold" in text


def test_adapt_decisions_reach_the_trace():
    from repro.trace import EV_ADAPT, format_timeline
    from repro.trace.export import chrome_trace, validate_chrome_trace
    jrpm = Jrpm(config=_permissive_config(), trace=True)
    report = jrpm.run_adaptive(SERIAL_DEP, name="serialdep",
                               args=(300,), epochs=4)
    applied = report.adaptation.applied_decisions()
    assert applied
    adapt_events = [event for event in report.trace.events()
                    if event.kind == EV_ADAPT]
    assert len(adapt_events) == len(applied)
    for event in adapt_events:
        action, epoch, detail = event.data
        assert action in (ACTION_DECOMMIT, ACTION_LOCK_ESCALATE,
                          ACTION_PROMOTE)
        assert isinstance(detail, str)
    data = chrome_trace(report.trace, name="adapt-test")
    assert validate_chrome_trace(data) == []
    assert any(event.get("cat") == "adapt"
               for event in data["traceEvents"])
    # ring keeps only the newest events; widen the per-loop window so
    # the epoch-0 adapt marks survive the later epochs' thread spans
    timeline = format_timeline(report.trace,
                               max_events_per_loop=10 ** 9)
    assert "adapt" in timeline


# ---------------------------------------------------------------------------
# adaptation preserves program semantics (quick oracle check; the full
# registry sweep lives in test_adapt_properties.py)
# ---------------------------------------------------------------------------


def test_adaptive_output_matches_interpreter_oracle():
    expected = interp(SERIAL_DEP, 250)
    jrpm = Jrpm(config=_permissive_config())
    report = jrpm.run_adaptive(SERIAL_DEP, name="serialdep",
                               args=(250,), epochs=4, verify=True)
    assert report.tls.output == expected.output
    assert report.tls.return_value == expected.return_value
