"""The persistent execution service: daemon, scheduler, store, client.

Covers the PR-6 acceptance surface:

* client/server round-trip over a unix socket,
* artifact-store hit on a second identical request (recompilation
  provably skipped via the exec-log hook),
* worker-crash retry, per-request timeout → clean error,
* backpressure (bounded queue → ``overloaded``),
* graceful-drain ordering (in-flight responses before the drain ack),
* ``Session.local()`` equivalence with ``Jrpm.run()`` (byte-identical
  reports),
* ``RunOptions`` deprecation shims and schema/protocol version gating.
"""

import asyncio
import os
import socket as socket_module
import threading
import time
import warnings

import pytest

from repro.core.pipeline import Jrpm, JrpmReport
from repro.serialize import REPORT_SCHEMA_VERSION, SchemaVersionError
from repro.service import (ArtifactStore, JobScheduler, JobSpec,
                           JrpmClient, JrpmServer, JrpmServiceError,
                           RunOptions, Session, coerce_run_options,
                           execute_job, protocol)
from conftest import wrap_main

TINY = wrap_main("""
        int s = 0;
        for (int i = 0; i < 1500; i = i + 1) { s = s + i * i; }
        return s;
""")

OTHER = wrap_main("""
        int s = 1;
        for (int i = 1; i < 900; i = i + 1) { s = s + i * 3; }
        return s;
""")


# ---------------------------------------------------------------------------
# daemon fixture: a real server on a unix socket, on a background loop
# ---------------------------------------------------------------------------

class ServiceFixture:
    def __init__(self, tmp_path, **server_kwargs):
        kwargs = dict(jobs=2, use_cache=False, timeout=60.0,
                      batch_max=8)
        kwargs.update(server_kwargs)
        self.socket_path = str(tmp_path / "jrpm.sock")
        self.server = JrpmServer(socket_path=self.socket_path, **kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()
        # the socket file appears at bind(), a beat before listen() —
        # poll with real connection attempts so no test can race into
        # the bind/listen window under load
        deadline = time.perf_counter() + 10.0
        while True:
            try:
                self.client().close()
                break
            except (FileNotFoundError, ConnectionRefusedError):
                assert time.perf_counter() < deadline, \
                    "daemon never started listening"
                time.sleep(0.02)

    def _serve(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self.loop.run_until_complete(self.server.serve_until_drained())

    def client(self):
        return JrpmClient.connect(socket_path=self.socket_path,
                                  timeout=60.0)

    def stop(self):
        if not self.server._done.is_set():
            self.loop.call_soon_threadsafe(self.server.initiate_drain)
        self.thread.join(timeout=20.0)
        assert not self.thread.is_alive(), "daemon failed to drain"
        self.loop.close()


@pytest.fixture
def service(tmp_path):
    fixture = ServiceFixture(tmp_path)
    yield fixture
    fixture.stop()


# ---------------------------------------------------------------------------
# round-trip + artifact store
# ---------------------------------------------------------------------------

def test_client_server_round_trip_unix_socket(service):
    with service.client() as client:
        pong = client.ping()
        assert pong["pong"] is True
        assert pong["protocol"] == protocol.PROTOCOL_VERSION
        assert pong["report_schema"] == REPORT_SCHEMA_VERSION
        report = client.run(TINY, name="tiny")
        assert isinstance(report, JrpmReport)
        assert report.outputs_match()
        assert report.tls_speedup > 1.0


def test_second_identical_profile_request_skips_recompilation(
        service, tmp_path):
    """Acceptance: the second identical ``profile`` request is served
    from the shared artifact store — the pipeline provably executes
    exactly once (one exec-log line), and the response says cached."""
    exec_log = str(tmp_path / "exec.log")
    with service.client() as client:
        payload = client.job_payload(TINY, name="tiny")
        payload["exec_log"] = exec_log
        first = client.request("profile", payload)
        assert first["annotations"] > 0
        (second, cached, _), = client.request_many(
            [("profile", payload)])
        assert cached is True
        assert second == first
        stats = client.stats()
        assert stats["store"]["hits_by_verb"]["profile"] == 1
        assert stats["store"]["misses_by_verb"]["profile"] == 1
    with open(exec_log) as fh:
        executions = fh.read().splitlines()
    assert len(executions) == 1, \
        "second identical request must not recompile"


def test_identical_burst_is_coalesced_to_one_execution(service,
                                                       tmp_path):
    """Ten pipelined identical requests in one burst → one pipeline
    execution (batching + coalescing), every response identical."""
    exec_log = str(tmp_path / "burst.log")
    with service.client() as client:
        payload = client.job_payload(TINY, name="tiny")
        payload["exec_log"] = exec_log
        settled = client.request_many([("run", payload)] * 10)
    results = [result for result, _, _ in settled]
    assert all(not isinstance(result, JrpmServiceError)
               for result in results)
    reports = [result["report"] for result in results]
    assert all(report == reports[0] for report in reports)
    with open(exec_log) as fh:
        executions = fh.read().splitlines()
    assert len(executions) == 1


def test_stats_verb_reports_queue_store_and_latency(service):
    with service.client() as client:
        client.run(TINY, name="tiny")
        stats = client.stats()
    assert stats["scheduler"]["queue_depth"] == 0
    assert stats["scheduler"]["workers"] == 2
    assert stats["store"]["cache_hit_rate"] >= 0.0
    run_latency = stats["latency_by_verb"]["run"]
    assert run_latency["count"] == 1
    assert run_latency["p95"] >= run_latency["p50"] > 0.0
    assert stats["uptime"] > 0.0


# ---------------------------------------------------------------------------
# failure modes: crash retry, timeout, backpressure, bad input
# ---------------------------------------------------------------------------

def test_worker_crash_is_retried_and_succeeds(service, tmp_path):
    marker = str(tmp_path / "crash.marker")
    with service.client() as client:
        payload = client.job_payload(TINY, name="tiny")
        payload["crash_marker"] = marker
        result = client.request("run", payload)
    assert os.path.exists(marker), "first worker should have died"
    report = JrpmReport.from_dict(result["report"])
    assert report.outputs_match()


def test_request_timeout_is_a_clean_error(service):
    with service.client() as client:
        payload = client.job_payload(
            OTHER, name="slow", options=RunOptions(timeout=0.5))
        payload["delay"] = 10.0
        with pytest.raises(JrpmServiceError) as excinfo:
            client.request("run", payload)
        assert excinfo.value.kind == "timeout"
        # the daemon survives: next request on the same connection works
        assert client.ping()["pong"] is True


def test_bounded_queue_applies_backpressure(tmp_path):
    fixture = ServiceFixture(tmp_path, jobs=1, queue_limit=1,
                             batch_max=1)
    try:
        with fixture.client() as client:
            payload = client.job_payload(TINY, name="tiny")
            payload["delay"] = 0.8
            settled = client.request_many([("run", payload)] * 6)
        kinds = [result.kind if isinstance(result, JrpmServiceError)
                 else "ok" for result, _, _ in settled]
        assert "overloaded" in kinds, kinds
        assert "ok" in kinds, kinds
    finally:
        fixture.stop()


def test_bad_requests_get_clear_errors(service):
    with service.client() as client:
        with pytest.raises(JrpmServiceError) as excinfo:
            client.request("florble", {"source": TINY})
        assert excinfo.value.kind == "bad-request"
        with pytest.raises(JrpmServiceError) as excinfo:
            client.request("run", {})
        assert excinfo.value.kind == "bad-request"
        assert "source" in str(excinfo.value)
        with pytest.raises(JrpmServiceError) as excinfo:
            client.request("run", {"source": TINY,
                                   "options": {"warp_speed": 9}})
        assert excinfo.value.kind == "bad-request"
        assert "warp_speed" in str(excinfo.value)


def test_protocol_version_mismatch_is_rejected(service):
    raw = socket_module.socket(socket_module.AF_UNIX,
                               socket_module.SOCK_STREAM)
    raw.settimeout(10.0)
    raw.connect(service.socket_path)
    try:
        frame = protocol.make_request("x1", "ping")
        frame["v"] = 99
        raw.sendall(protocol.encode_frame(frame))
        response = protocol.decode_frame(
            raw.makefile("rb").readline())
        assert response["ok"] is False
        assert response["error"]["kind"] == "protocol"
        assert "v%d" % protocol.PROTOCOL_VERSION \
            in response["error"]["message"]
    finally:
        raw.close()


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------

def test_graceful_drain_answers_in_flight_requests_first(tmp_path):
    """Pipelined work followed by ``drain`` on one connection: every
    in-flight response arrives before the drain ack, then the daemon
    refuses new work and shuts down."""
    fixture = ServiceFixture(tmp_path, jobs=2)
    client = fixture.client()
    try:
        run_payload = client.job_payload(TINY, name="tiny")
        run_payload["delay"] = 0.3
        ids, arrival = [], []
        for verb, payload in [("run", run_payload),
                              ("run", run_payload),
                              ("drain", None)]:
            request_id = client._next_id()
            ids.append(request_id)
            client._send(protocol.make_request(request_id, verb,
                                               payload))
        responses = {}
        while len(responses) < len(ids):
            response = client._recv()
            arrival.append(response["id"])
            responses[response["id"]] = response
        assert arrival[-1] == ids[-1], \
            "drain ack must come after in-flight responses"
        for request_id in ids[:2]:
            assert responses[request_id]["ok"], responses[request_id]
        assert responses[ids[-1]]["result"]["drained"] is True
        fixture.thread.join(timeout=20.0)
        assert not fixture.thread.is_alive()
    finally:
        client.close()
        fixture.stop()


def test_drained_scheduler_rejects_new_submissions(tmp_path):
    store = ArtifactStore()
    scheduler = JobScheduler(store, jobs=1, queue_limit=4, timeout=30.0)
    try:
        spec = JobSpec(verb="compile", source=TINY,
                       options=RunOptions())
        job = scheduler.submit(spec)
        scheduler.drain()
        assert job.future.done()
        assert job.future.result()["compile_cycles"] > 0
        # a store hit is still served while draining (it costs nothing)
        assert scheduler.submit(spec).cached is True
        from repro.service import Draining
        with pytest.raises(Draining):
            scheduler.submit(JobSpec(verb="compile", source=OTHER,
                                     options=RunOptions()))
    finally:
        scheduler.close()


# ---------------------------------------------------------------------------
# Session.local() — the in-process half of the unified API
# ---------------------------------------------------------------------------

def test_local_session_run_matches_jrpm_run_byte_identical():
    direct = Jrpm(options=RunOptions()).run(TINY, name="tiny")
    with Session.local() as session:
        via_session = session.run(TINY, name="tiny")
    assert via_session.to_dict() == direct.to_dict()


def test_local_session_memoizes_in_artifact_store():
    with Session.local() as session:
        first = session.profile(TINY)
        second = session.profile(TINY)
        assert first == second
        store_stats = session.stats()["store"]
        assert store_stats["hits_by_verb"]["profile"] == 1
        assert store_stats["misses_by_verb"]["profile"] == 1


def test_local_and_remote_sessions_return_identical_reports(service):
    with Session.local() as session:
        local_report = session.run(TINY, name="tiny")
    with service.client() as client:
        remote_report = client.run(TINY, name="tiny")
    assert local_report.to_dict() == remote_report.to_dict()


def test_execute_job_rejects_unknown_verb():
    with pytest.raises(ValueError, match="unknown verb"):
        execute_job(JobSpec(verb="nope", source=TINY))


# ---------------------------------------------------------------------------
# RunOptions + deprecation shims
# ---------------------------------------------------------------------------

def test_run_options_round_trip_and_strictness():
    options = RunOptions(cpus=2, trace=True, epochs=7, args=(3,))
    rebuilt = RunOptions.from_dict(options.to_dict())
    assert rebuilt == options
    with pytest.raises(ValueError, match="unknown RunOptions field"):
        RunOptions.from_dict({"adapt_epochs": 3})


def test_coerce_run_options_warns_on_legacy_names():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        options = coerce_run_options(None, adapt_epochs=9,
                                     adapt_policy="null")
    assert options.epochs == 9
    assert options.policy == "null"
    messages = [str(w.message) for w in caught
                if issubclass(w.category, DeprecationWarning)]
    assert any("adapt_epochs" in message for message in messages)
    assert any("adapt_policy" in message for message in messages)


def test_run_adaptive_adapt_epochs_kwarg_is_deprecated_but_works():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        report = Jrpm().run_adaptive(TINY, name="tiny", adapt_epochs=2)
    assert report.adaptation.epochs_run <= 2
    assert any(issubclass(w.category, DeprecationWarning)
               for w in caught)


def test_run_suite_accepts_run_options(tmp_path):
    from repro.runner import SuiteRunner
    runner = SuiteRunner(jobs=1, use_cache=False)
    reports = runner.run_suite(
        size="small", workloads=["BitOps"],
        options=RunOptions(adapt=True, epochs=2))
    assert reports["BitOps"].adaptation is not None


def test_run_suite_legacy_adapt_epochs_warns(tmp_path):
    from repro.runner import SuiteRunner
    runner = SuiteRunner(jobs=1, use_cache=False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        reports = runner.run_suite(size="small", workloads=["BitOps"],
                                   adapt=True, adapt_epochs=2)
    assert reports["BitOps"].adaptation is not None
    assert any(issubclass(w.category, DeprecationWarning)
               for w in caught)


# ---------------------------------------------------------------------------
# schema single source of truth
# ---------------------------------------------------------------------------

def test_report_schema_version_single_source_of_truth():
    assert JrpmReport.SCHEMA_VERSION == REPORT_SCHEMA_VERSION


def test_from_dict_rejects_future_schema_versions():
    report = Jrpm().run(TINY, name="tiny")
    payload = report.to_dict()
    payload["schema"] = REPORT_SCHEMA_VERSION + 1
    with pytest.raises(SchemaVersionError) as excinfo:
        JrpmReport.from_dict(payload)
    assert "newer" in str(excinfo.value)
    # older / missing schema fields still load (readers default-fill)
    payload["schema"] = 1
    del payload["trace_aggregates"]
    del payload["adaptation"]
    assert JrpmReport.from_dict(payload).name == "tiny"


def test_cache_key_depends_on_report_schema(monkeypatch):
    from repro.runner import cache as cache_module
    from repro.jit.stl import StlOptions
    from repro.core.pipeline import VmOptions
    from repro.hydra.config import HydraConfig
    key_args = (TINY, (), HydraConfig(), StlOptions(), VmOptions())
    before = cache_module.cache_key(*key_args, salt="s")
    monkeypatch.setattr(cache_module, "REPORT_SCHEMA_VERSION",
                        REPORT_SCHEMA_VERSION + 1)
    after = cache_module.cache_key(*key_args, salt="s")
    assert before != after


# ---------------------------------------------------------------------------
# metrics verb + request-correlated tracing (ISSUE 10)
# ---------------------------------------------------------------------------

def test_metrics_verb_round_trip(service):
    """The ``metrics`` control verb returns the daemon's registry in
    both formats, and worker-side metric deltas (the job executed in a
    pool process) are merged into it exactly once."""
    from repro.metrics import MetricsRegistry, lint, reset_registry

    reset_registry()    # other tests in this process fold metrics too
    with service.client() as client:
        client.run(TINY, name="tiny")

        result = client.metrics()
        registry = MetricsRegistry.from_dict(result["metrics"])
        runs = registry.get("jrpm_runs")
        assert runs is not None
        assert sum(child.value for _, child in runs.series()) == 1
        # scheduler + TLS fold families came along
        assert registry.get("jrpm_scheduler_submits") is not None
        assert registry.get("jrpm_tls_threads") is not None

        text = client.metrics(format="openmetrics")["openmetrics"]
        assert lint(text) == []
        assert "jrpm_runs_total" in text

        with pytest.raises(JrpmServiceError) as excinfo:
            client.metrics(format="nope")
        assert excinfo.value.kind == "bad-request"

        # a second identical run is a store hit: the run counter must
        # NOT double-count the stored result's delta
        client.run(TINY, name="tiny")
        registry = MetricsRegistry.from_dict(
            client.metrics()["metrics"])
        runs = registry.get("jrpm_runs")
        assert sum(child.value for _, child in runs.series()) == 1


def test_metrics_http_endpoint_serves_openmetrics(tmp_path):
    """``--metrics-port 0`` exposes a curl-able /metrics endpoint."""
    import http.client

    from repro.metrics import CONTENT_TYPE, lint, reset_registry

    reset_registry()
    fixture = ServiceFixture(tmp_path, metrics_port=0)
    try:
        with fixture.client() as client:
            client.run(TINY, name="tiny")
            result = client.metrics()
            endpoint = result["http_endpoint"]     # "host:port"
        host, port = endpoint.rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        conn.close()
        assert response.status == 200
        assert response.getheader("Content-Type") == CONTENT_TYPE
        assert lint(body) == []
        assert "jrpm_runs_total" in body
        assert "jrpm_pool_tasks_total" in body
    finally:
        fixture.stop()


def test_traced_daemon_run_correlates_request_id(service):
    """A traced run through the daemon exports a chrome trace whose
    request span carries the wire request id."""
    from repro.trace import validate_chrome_trace

    with service.client() as client:
        payload = client.job_payload(TINY, name="tiny")
        payload["options"]["trace"] = True
        result = client.request("run", payload)
        data = result["chrome_trace"]
        assert validate_chrome_trace(data) == []
        request_id = data["otherData"]["request_id"]
        spans = [e for e in data["traceEvents"]
                 if e.get("cat") == "request"]
        assert len(spans) == 1
        assert spans[0]["name"] == "request %s" % request_id
        stamped = [e for e in data["traceEvents"]
                   if e["ph"] not in ("M", "C") and e is not spans[0]]
        assert stamped
        assert all(e["args"]["request_id"] == request_id
                   for e in stamped)
