"""Machine-level corners: frames, calls, intrinsics, signals."""

import pytest

from repro.errors import GuestException, VMError
from repro.hydra.config import HydraConfig
from repro.hydra.machine import Machine, SIG_DONE
from repro.jit.compiler import compile_program
from repro.minijava import compile_source

from conftest import machine_run, wrap_main


def test_deep_recursion_frames():
    result = machine_run("""
class Main {
    static int depth(int n) { return n == 0 ? 0 : 1 + depth(n - 1); }
    static int main() { return depth(200); }
}
""")
    assert result.return_value == 200


def test_return_value_plumbing_through_chain():
    result = machine_run("""
class Main {
    static int a(int x) { return b(x) + 1; }
    static int b(int x) { return c(x) * 2; }
    static int c(int x) { return x - 3; }
    static int main() { return a(10); }
}
""")
    assert result.return_value == (10 - 3) * 2 + 1


def test_void_methods_leave_registers_alone():
    result = machine_run("""
class Sink {
    int total;
    void eat(int x) { total += x; }
}
class Main {
    static int main() {
        Sink s = new Sink();
        int keep = 42;
        s.eat(5);
        s.eat(7);
        return keep + s.total;
    }
}
""")
    assert result.return_value == 54


def test_instruction_budget_enforced():
    config = HydraConfig()
    compiled = compile_program(compile_source(wrap_main("""
        int i = 0;
        while (true) { i++; }
        return i;
    """)), config)
    machine = Machine(compiled, config)
    with pytest.raises(VMError):
        machine.run(max_instructions=10_000)


def test_guest_exception_recorded_not_raised():
    result = machine_run(wrap_main("int z = 0; return 4 / z;"))
    assert result.guest_exception is not None
    assert result.guest_exception.kind == "ArithmeticException"
    assert result.return_value is None


def test_output_ordering_preserved():
    result = machine_run(wrap_main("""
        for (int i = 0; i < 5; i++) { Sys.printInt(i * i); }
        return 0;
    """))
    assert result.output == [0, 1, 4, 9, 16]


def test_float_intrinsics_cost_more_than_alu():
    cheap = machine_run(wrap_main("""
        float s = 0.0;
        for (int i = 0; i < 200; i++) { s = s + 1.25; }
        Sys.printFloat(s);
        return 0;
    """))
    costly = machine_run(wrap_main("""
        float s = 0.0;
        for (int i = 0; i < 200; i++) { s = s + Math.sin(1.25); }
        Sys.printFloat(s);
        return 0;
    """))
    assert costly.cycles > cheap.cycles + 200 * 20


def test_statics_live_in_memory():
    from repro.hydra.machine import Machine as M
    config = HydraConfig()
    program = compile_source("""
class G { static int knob; }
class Main {
    static int main() { G.knob = 1234; return G.knob; }
}
""")
    compiled = compile_program(program, config)
    machine = M(compiled, config)
    result = machine.run()
    assert result.return_value == 1234
    addr = compiled.layout.field_addr[("G", "knob")]
    assert machine.memory.load(addr) == 1234


def test_object_header_contains_class_id():
    config = HydraConfig()
    program = compile_source("""
class Thing { int v; }
class Main {
    static int main() {
        Thing t = new Thing();
        t.v = 9;
        return t.v;
    }
}
""")
    compiled = compile_program(program, config)
    machine = Machine(compiled, config)
    machine.run()
    thing = compiled.program.get_class("Thing")
    headers = [machine.memory.load(rec.addr + 4)
               for rec in machine.allocator.objects.values()
               if rec.info.class_name == "Thing"]
    assert headers == [thing.class_id]


def test_array_header_contains_length():
    config = HydraConfig()
    compiled = compile_program(compile_source(wrap_main(
        "int[] a = new int[37]; return a.length;")), config)
    machine = Machine(compiled, config)
    result = machine.run()
    assert result.return_value == 37
    lengths = [machine.memory.load(rec.addr + 4)
               for rec in machine.allocator.objects.values()]
    assert 37 in lengths
