"""Unit and integration tests for the persistent profile repository.

Covers the record model round-trips and schema gate, the weighted
merge's fixed-point property, fingerprint-driven invalidation,
corrupt-file tolerance, warm-start plan equivalence on a small program,
provenance bookkeeping (cold → warm → confirmed), adaptation outcome
write-back, and the version/profdb service verbs.  The full 26-workload
differential sweep lives in ``test_profdb_sweep.py`` (``slow`` tier).
"""

import json
import os

import pytest

from repro import Jrpm, compile_source, package_version
from repro.analysis import (method_fingerprint, method_fingerprints,
                            program_fingerprint)
from repro.profdb import (MIN_CONFIDENCE, PROFDB_SCHEMA_VERSION,
                          InputProfile, LoopProfile, ProfileDb,
                          ProgramProfile, confidence, merge_stats_dict,
                          merge_value, site_key, split_site_key,
                          validate_profdb_dict)
from repro.profdb.merge import merge_input_profile
from repro.service import RunOptions, Session
from repro.workloads import lookup

LOOPY = """
class Main {
    static int main() {
        int sum = 0;
        int i = 0;
        while (i < 4000) {
            sum = sum + i * 3 - (i / 2);
            i = i + 1;
        }
        int j = 0;
        while (j < 1500) {
            sum = sum - j;
            j = j + 1;
        }
        Sys.printInt(sum);
        return sum;
    }
}
"""

LOOPY_BIGGER = LOOPY.replace("4000", "6000")


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "profdb.json")


def _run(db_path, source=LOOPY, name="loopy", warm_start=None, **kwargs):
    jrpm = Jrpm(profdb=db_path, warm_start=warm_start, **kwargs)
    return jrpm.run(compile_source(source), name=name)


# -- fingerprints -------------------------------------------------------------

def test_method_fingerprint_masks_constants():
    a = compile_source(LOOPY)
    b = compile_source(LOOPY_BIGGER)
    mains_a = {m.qualified_name: m for m in a.all_methods()}
    mains_b = {m.qualified_name: m for m in b.all_methods()}
    for name in mains_a:
        # structural form masks ICONST operands: sizes hash identically
        assert method_fingerprint(mains_a[name]) \
            == method_fingerprint(mains_b[name])
    # exact form keeps them: byte-different programs never collide
    assert program_fingerprint(a, include_constants=True) \
        != program_fingerprint(b, include_constants=True)
    assert program_fingerprint(a) == program_fingerprint(b)


def test_method_fingerprint_sees_real_edits():
    edited = LOOPY.replace("sum + i * 3", "sum + i + 3")
    a = method_fingerprints(compile_source(LOOPY))
    b = method_fingerprints(compile_source(edited))
    assert a != b


# -- record model -------------------------------------------------------------

def test_site_key_round_trip():
    assert split_site_key(site_key("Main.main", 3)) == ("Main.main", 3)
    # method names may themselves contain '#'-free dots only, but be
    # defensive about rpartition behavior on plain names
    assert split_site_key("A.b#0") == ("A.b", 0)


def test_records_round_trip(db_path):
    _run(db_path)
    db = ProfileDb(db_path)
    payload = db.export()
    assert validate_profdb_dict(payload) == []
    for entry in payload["programs"].values():
        rebuilt = ProgramProfile.from_dict(entry)
        assert rebuilt.to_dict() == entry


def test_validate_profdb_dict_rejects_malformed():
    assert validate_profdb_dict([]) == ["top level: not an object"]
    assert any("schema" in p for p in validate_profdb_dict({}))
    newer = {"schema": PROFDB_SCHEMA_VERSION + 1, "programs": {}}
    assert any("newer" in p for p in validate_profdb_dict(newer))
    bad_loop = {
        "schema": PROFDB_SCHEMA_VERSION,
        "programs": {"p": {
            "name": "x", "runs": 1, "updated": 0.0, "methods": {},
            "inputs": {"i": {
                "runs": 1, "warm_runs": 0, "weight": 1.0, "drift": 0.0,
                "updated": 0.0, "compile_cycles": 0, "annotations": 0,
                "max_dynamic_depth": 1, "tls_cycles": 0.0, "args": [],
                "options": "", "sequential": {"cycles": 1},
                "profiling": {"cycles": 1}, "nesting": [],
                "plan_sites": [],
                "loops": {"M#0": {"loop_id": "not-a-number"}},
            }},
        }},
    }
    problems = validate_profdb_dict(bad_loop)
    assert any("loop_id" in p for p in problems)


# -- merging ------------------------------------------------------------------

def test_merge_value_fixed_point_on_equal_inputs():
    # equality short-circuits before float arithmetic: no drift ever
    assert merge_value(3, 3, 0.9, 1.0) == 3
    assert isinstance(merge_value(3, 3, 0.9, 1.0), int)
    assert merge_value(0.7, 0.7, 123.4, 1.0) == 0.7
    assert merge_value("x", "y", 1.0, 1.0) == "y"
    assert merge_value(2.0, 4.0, 1.0, 1.0) == 3.0


def test_merge_stats_dict_identical_is_identity(db_path):
    _run(db_path)
    db = ProfileDb(db_path)
    payload = db.export()
    for entry in payload["programs"].values():
        for input_entry in entry["inputs"].values():
            for loop in input_entry["loops"].values():
                stats = loop["stats"]
                assert merge_stats_dict(stats, json.loads(
                    json.dumps(stats)), 0.9, 1.0) == stats


def test_merge_weights_and_confidence():
    assert confidence(0.0, 0.0) == 0.0
    one_run = confidence(1.0, 0.0)
    assert one_run == 0.5 > MIN_CONFIDENCE
    assert confidence(5.0, 0.0) > one_run
    assert confidence(5.0, 1.0) < confidence(5.0, 0.0)


def test_merge_input_profile_accumulates_adapt_counters():
    def entry(decommits):
        return InputProfile(
            runs=1, weight=1.0, updated=1.0, sequential={"cycles": 10},
            profiling={"cycles": 12},
            loops={"M#0": LoopProfile(loop_id=1, line=3,
                                      stats={"loop_id": 1, "arcs": []},
                                      decommits=decommits)})
    merged = merge_input_profile(entry(2), entry(1), decay=1.0)
    assert merged.loops["M#0"].decommits == 3
    assert merged.runs == 2
    assert merged.weight == 2.0


# -- db mechanics -------------------------------------------------------------

def test_corrupt_and_truncated_files_read_as_empty(db_path):
    report = _run(db_path)
    assert report.profile_provenance == "cold"
    with open(db_path) as fh:
        good = fh.read()
    # truncation: reader degrades to a miss, writer recovers the file
    with open(db_path, "w") as fh:
        fh.write(good[: len(good) // 2])
    db = ProfileDb(db_path)
    assert db.stats_dict()["programs"] == 0
    report = _run(db_path)
    assert report.profile_provenance == "cold"
    assert ProfileDb(db_path).stats_dict()["programs"] == 1
    # garbage bytes likewise
    with open(db_path, "w") as fh:
        fh.write("\x00\xff not json")
    assert ProfileDb(db_path).stats_dict()["programs"] == 0
    # a future schema version is treated as unreadable, not guessed at
    with open(db_path, "w") as fh:
        json.dump({"schema": PROFDB_SCHEMA_VERSION + 1,
                   "programs": {}}, fh)
    assert ProfileDb(db_path).stats_dict()["programs"] == 0


def test_gc_bounds_inputs_and_programs(db_path):
    db = ProfileDb(db_path, max_inputs=1)
    jrpm = Jrpm(profdb=db)
    jrpm.run(compile_source(LOOPY), name="loopy", args=())
    jrpm.run(compile_source(LOOPY_BIGGER), name="loopy", args=())
    stats = db.stats_dict()
    # same shape key (sizes differ only in constants), capped inputs
    assert stats["programs"] == 1
    assert stats["inputs"] == 1
    evicted = db.gc(max_programs=0)
    assert evicted == 1
    assert db.stats_dict()["programs"] == 0


def test_distinct_workloads_sharing_method_names_stay_apart(db_path):
    # every workload declares Main.main; two different programs must
    # not share a consensus entry (they would invalidate each other's
    # inputs on every record)
    _run(db_path)
    other = LOOPY.replace("sum + i * 3", "sum - i * 7")
    _run(db_path, source=other, name="other")
    db = ProfileDb(db_path)
    assert db.stats_dict()["programs"] == 2
    # both keep warm-starting, in any interleaving
    assert _run(db_path).profile_provenance == "warm"
    assert _run(db_path, source=other,
                name="other").profile_provenance == "warm"
    assert _run(db_path).profile_provenance == "warm"


def test_invalidation_on_method_edit(db_path):
    report = _run(db_path)
    assert report.profile_provenance == "cold"
    assert _run(db_path).profile_provenance == "warm"
    # a real edit (same program shape) must kill the warm start
    edited = LOOPY.replace("sum + i * 3", "sum + i + 3")
    report = _run(db_path, source=edited)
    assert report.profile_provenance == "cold"
    # and the edited version then warms on its own merged profile
    assert _run(db_path, source=edited).profile_provenance == "warm"


# -- warm start ---------------------------------------------------------------

def test_cold_then_warm_then_confirmed(db_path):
    cold = _run(db_path)
    assert cold.profile_provenance == "cold"
    warm = _run(db_path)
    assert warm.profile_provenance == "warm"
    # plan-equivalent and measurement-identical (simulator determinism)
    assert sorted(warm.plans) == sorted(cold.plans)
    assert warm.tls.cycles == cold.tls.cycles
    assert warm.sequential.cycles == cold.sequential.cycles
    assert warm.tls_speedup == cold.tls_speedup
    assert warm.outputs_match()
    # forcing a full profile over a confident consensus -> confirmed
    confirmed = _run(db_path, warm_start="off")
    assert confirmed.profile_provenance == "confirmed"
    # warm hits never perturb the consensus: still warm, still equal
    again = _run(db_path)
    assert again.profile_provenance == "warm"
    assert again.tls.cycles == cold.tls.cycles


def test_warm_start_off_and_force(db_path):
    assert _run(db_path, warm_start="off").profile_provenance == "cold"
    # below the confidence gate nothing warms on auto; force overrides
    db = ProfileDb(db_path, min_confidence=0.99)
    assert Jrpm(profdb=db).run(
        compile_source(LOOPY), name="loopy").profile_provenance == "cold"
    forced = Jrpm(profdb=db, warm_start="force").run(
        compile_source(LOOPY), name="loopy")
    assert forced.profile_provenance == "warm"


def test_warm_report_round_trips(db_path):
    _run(db_path)
    warm = _run(db_path)
    data = warm.to_dict()
    assert data["profile_provenance"] == "warm"
    from repro.core.pipeline import JrpmReport
    rebuilt = JrpmReport.from_dict(data)
    assert rebuilt.profile_provenance == "warm"
    assert rebuilt.to_dict() == data
    # pre-provenance payloads default to cold
    data.pop("profile_provenance")
    assert JrpmReport.from_dict(data).profile_provenance == "cold"


def test_warm_start_skipped_for_analysis_runs(db_path):
    _run(db_path)
    report = Jrpm(profdb=db_path, analysis=True).run(
        compile_source(LOOPY), name="loopy")
    assert report.profile_provenance in ("cold", "confirmed")
    assert report.analysis is not None


def test_adapt_outcomes_ban_decommitted_loops(db_path):
    from repro.adapt import ThresholdPolicy
    source = lookup("euler").source("small")
    program = compile_source(source)
    # an aggressive policy decommits every selected loop
    policy = ThresholdPolicy(decommit_threshold=100.0, cooldown=0)
    adaptive = Jrpm(profdb=db_path).run_adaptive(
        program, name="euler", policy=policy, epochs=2)
    decommitted = {
        decision.loop_id
        for decision in adaptive.adaptation.applied_decisions()
        if decision.action == "decommit"}
    assert decommitted, "policy was expected to decommit something"
    # the write-back must ban those sites in later warm starts
    warm = Jrpm(profdb=db_path, warm_start="force").run(
        program, name="euler")
    assert warm.profile_provenance == "warm"
    assert not (set(warm.plans) & decommitted)


# -- provenance in tooling ----------------------------------------------------

def test_suite_metrics_record_provenance(db_path):
    from repro.runner.metrics import RunRecord, SuiteMetrics
    cold = _run(db_path)
    warm = _run(db_path)
    metrics = SuiteMetrics()
    metrics.record(RunRecord.from_report(cold, workload="loopy"))
    metrics.record(RunRecord.from_report(warm, workload="loopy"))
    records = [r.to_dict() for r in metrics.records]
    assert records[0]["profile_provenance"] == "cold"
    assert records[1]["profile_provenance"] == "warm"
    assert "profdb: 1 warm start" in metrics.summary()


def test_format_report_shows_provenance(db_path):
    from repro.core.report import format_report
    cold = _run(db_path)
    warm = _run(db_path)
    assert "profile provenance:      cold" in format_report(
        cold, verbose=True)
    assert "warm" in format_report(warm)       # shown even without -v
    plain = Jrpm().run(compile_source(LOOPY), name="loopy")
    assert "provenance" not in format_report(plain)


def test_profdb_trace_events(db_path):
    from repro.trace.export import chrome_trace, format_timeline
    cold = _run(db_path, trace=True)
    events = [e for e in cold.trace.events() if e.kind == "profdb"]
    assert events and events[0].data[0] == "cold"
    assert any(entry.get("cat") == "profdb"
               for entry in chrome_trace(cold.trace)["traceEvents"])
    warm = _run(db_path, trace=True)
    events = [e for e in warm.trace.events() if e.kind == "profdb"]
    assert events and events[0].data[0] == "warm"
    assert any("profdb warm" in line
               for line in format_timeline(warm.trace).splitlines())


# -- service integration ------------------------------------------------------

def test_local_session_version_and_profdb(db_path):
    with Session.local() as session:
        version = session.version()
        assert version["version"] == package_version()
        assert version["profdb_schema"] == PROFDB_SCHEMA_VERSION
        options = RunOptions(profile_db=db_path)
        cold = session.run(source=LOOPY, name="loopy", options=options)
        warm = session.run(source=LOOPY, name="loopy", options=options)
        # the store must NOT have replayed the cold report
        assert warm.profile_provenance == "warm"
        assert warm.tls.cycles == cold.tls.cycles
        stats = session.profdb(path=db_path)["profdb"]
        assert stats["programs"] == 1 and stats["warm_runs"] == 1
        exported = session.profdb(op="export", path=db_path)["profdb"]
        assert validate_profdb_dict(exported) == []
        gc = session.profdb(op="gc", path=db_path, max_programs=0)
        assert gc["evicted"] == 1


def test_daemon_version_and_profdb_verbs(tmp_path, db_path):
    import asyncio
    import threading
    import time as time_module

    from repro.serialize import REPORT_SCHEMA_VERSION
    from repro.service import JrpmClient
    from repro.service.daemon import JrpmServer

    socket_path = str(tmp_path / "jrpm.sock")
    server = JrpmServer(socket_path=socket_path, jobs=1,
                        use_cache=False, timeout=60.0,
                        profdb_path=db_path)
    loop = asyncio.new_event_loop()

    def serve():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        loop.run_until_complete(server.serve_until_drained())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    deadline = time_module.perf_counter() + 10.0
    while True:
        try:
            JrpmClient.connect(socket_path=socket_path).close()
            break
        except (FileNotFoundError, ConnectionRefusedError):
            assert time_module.perf_counter() < deadline
            time_module.sleep(0.02)
    try:
        client = JrpmClient.connect(socket_path=socket_path,
                                    timeout=60.0)
        version = client.version()
        assert version["version"] == package_version()
        assert version["report_schema"] == REPORT_SCHEMA_VERSION
        assert version["profdb_schema"] == PROFDB_SCHEMA_VERSION
        # the daemon injects its shared DB into every run it executes
        cold = client.run(LOOPY, name="loopy")
        warm = client.run(LOOPY, name="loopy")
        assert cold.profile_provenance == "cold"
        assert warm.profile_provenance == "warm"
        assert warm.tls.cycles == cold.tls.cycles
        stats = client.profdb()["profdb"]
        assert stats["programs"] == 1 and stats["warm_runs"] == 1
        exported = client.profdb(op="export")["profdb"]
        assert validate_profdb_dict(exported) == []
        client.drain()
        client.close()
    finally:
        thread.join(timeout=20.0)
        assert not thread.is_alive()
        loop.close()


def test_run_options_round_trip_with_profdb_fields(db_path):
    options = RunOptions(profile_db=db_path, warm_start="force")
    rebuilt = RunOptions.from_dict(options.to_dict())
    assert rebuilt.profile_db == db_path
    assert rebuilt.warm_start == "force"
    # legacy payloads without the new keys still load
    legacy = {k: v for k, v in options.to_dict().items()
              if k not in ("profile_db", "warm_start")}
    defaults = RunOptions.from_dict(legacy)
    assert defaults.profile_db is None
    assert defaults.warm_start == "auto"


def test_job_fingerprint_ignores_profdb_fields(db_path):
    from repro.service import JobSpec
    plain = JobSpec(verb="run", source=LOOPY, name="x",
                    options=RunOptions())
    backed = JobSpec(verb="run", source=LOOPY, name="x",
                     options=RunOptions(profile_db=db_path,
                                        warm_start="force"))
    assert plain.fingerprint() == backed.fingerprint()


def test_artifact_store_bypasses_profdb_jobs(db_path):
    from repro.service import ArtifactStore, JobSpec
    store = ArtifactStore()
    spec = JobSpec(verb="run", source=LOOPY, name="x",
                   options=RunOptions(profile_db=db_path))
    store.put(spec, {"report": {}})
    assert store.get(spec) is None
    assert store.misses == 1 and store.hits == 0


def test_cli_version_and_profdb(capsys, db_path):
    from repro.cli import main
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert package_version() in capsys.readouterr().out
    _run(db_path)
    assert main(["profdb", "--path", db_path, "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["programs"] == 1
    assert main(["profdb", "export", "--path", db_path]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert validate_profdb_dict(payload) == []
    assert main(["profdb", "gc", "--path", db_path,
                 "--max-programs", "0"]) == 0
    assert "evicted 1" in capsys.readouterr().out
