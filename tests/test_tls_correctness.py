"""Differential correctness: the full pipeline's speculative run must
preserve sequential semantics (the central TLS guarantee, paper §2)."""

import pytest

from repro.bytecode import run_program
from repro.core.pipeline import Jrpm
from repro.jit.stl import StlOptions
from repro.minijava import compile_source

from conftest import wrap_main

CASES = {
    "independent-fill": wrap_main("""
        int[] a = new int[600];
        for (int i = 0; i < 600; i++) { a[i] = (i * 17 + 3) % 101; }
        int s = 0;
        for (int i = 0; i < 600; i++) { s += a[i]; }
        Sys.printInt(s);
        return s;
    """),
    "serial-recurrence": wrap_main("""
        int[] b = new int[400];
        b[0] = 1;
        for (int i = 1; i < 400; i++) { b[i] = b[i-1] * 3 + 1; }
        Sys.printInt(b[399]);
        return 0;
    """),
    "conditional-carried": wrap_main("""
        int last = -1;
        int[] a = new int[500];
        for (int i = 0; i < 500; i++) {
            a[i] = (i * 97) % 256;
            if (a[i] > 250) { last = i; }
        }
        Sys.printInt(last);
        return last;
    """),
    "lcg-sync": wrap_main("""
        int seed = 7;
        int hits = 0;
        for (int i = 0; i < 600; i++) {
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            int x = seed % 100;
            int y = (x * x + i) % 97;
            if (y < 50) { hits++; }
        }
        Sys.printInt(hits);
        Sys.printInt(seed);
        return hits;
    """),
    "early-return": """
class Main {
    static int find(int[] a, int key) {
        for (int i = 0; i < a.length; i++) {
            if (a[i] == key) { return i; }
        }
        return -1;
    }
    static int main() {
        int[] a = new int[800];
        for (int i = 0; i < 800; i++) { a[i] = (i * 31) % 1024; }
        Sys.printInt(find(a, a[700]));
        Sys.printInt(find(a, -5));
        return 0;
    }
}
""",
    "break-multi-exit": wrap_main("""
        int[] a = new int[900];
        for (int i = 0; i < 900; i++) { a[i] = (i * 37) % 2048; }
        int found = -1;
        for (int i = 0; i < 900; i++) {
            if (a[i] == 1850) { found = i; break; }
        }
        Sys.printInt(found);
        return found;
    """),
    "methods-in-loop": """
class Main {
    static int f(int x) { return (x * x + 7) % 991; }
    static int g(int x) { return x < 100 ? f(x) : f(x % 100); }
    static int main() {
        int t = 0;
        for (int i = 0; i < 400; i++) { t += g(i); }
        Sys.printInt(t);
        return t;
    }
}
""",
    "alloc-in-loop": """
class Pair { int a; int b; Pair(int x, int y) { a = x; b = y; } }
class Main {
    static int main() {
        int s = 0;
        for (int i = 0; i < 300; i++) {
            Pair p = new Pair(i, i * 2);
            s += p.a + p.b;
        }
        Sys.printInt(s);
        return s;
    }
}
""",
    "resetable-position": wrap_main("""
        int[] data = new int[2000];
        int pos = 0;
        int acc = 0;
        for (int i = 0; i < 1500; i++) {
            data[pos] = data[pos] + i;
            acc = (acc + data[pos]) & 0xFFFFF;
            pos = pos + 41;
            if (pos >= 2000) { pos = (i * 3) % 29; }
        }
        Sys.printInt(acc);
        Sys.printInt(pos);
        return acc;
    """),
    "float-reductions": wrap_main("""
        float[] x = new float[500];
        for (int i = 0; i < 500; i++) { x[i] = (float)(i % 17) * 0.25; }
        float total = 0.0;
        float biggest = -1.0;
        for (int i = 0; i < 500; i++) {
            total = total + x[i] * x[i];
            biggest = Math.fmax(biggest, x[i]);
        }
        Sys.printFloat(total);
        Sys.printFloat(biggest);
        return (int) total;
    """),
    "nested-selected": wrap_main("""
        int n = 24;
        int[][] m = new int[n][n];
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { m[i][j] = (i * 31 + j * 7) % 64; }
        }
        int t = 0;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { t += m[i][j] * m[j][i]; }
        }
        Sys.printInt(t);
        return t;
    """),
    "static-state": """
class Global {
    static int counter;
    static int limit;
}
class Main {
    static int main() {
        Global.limit = 350;
        int[] a = new int[350];
        for (int i = 0; i < Global.limit; i++) {
            a[i] = i * 3;
        }
        int s = 0;
        for (int i = 0; i < Global.limit; i++) { s += a[i] & 7; }
        Global.counter = s;
        Sys.printInt(Global.counter);
        return s;
    }
}
""",
}


def run_case(src, **jrpm_kwargs):
    program = compile_source(src)
    oracle = run_program(program)
    report = Jrpm(**jrpm_kwargs).run(program)
    assert report.sequential.output == oracle.output, "sequential diverged"
    assert report.outputs_match(), (
        "TLS diverged: %r vs %r" % (report.tls.output,
                                    report.sequential.output))
    return report


@pytest.mark.parametrize("name", sorted(CASES))
def test_tls_preserves_semantics(name):
    run_case(CASES[name])


@pytest.mark.parametrize("name", ["independent-fill", "lcg-sync",
                                  "resetable-position", "nested-selected"])
def test_tls_correct_with_all_optimizations_off(name):
    options = StlOptions(invariant_regalloc=False, noncomm_inductors=False,
                         resetable_inductors=False, sync_locks=False,
                         reductions=False, multilevel=False, hoisting=False)
    run_case(CASES[name], stl_options=options)


@pytest.mark.parametrize("flag", ["invariant_regalloc", "noncomm_inductors",
                                  "resetable_inductors", "sync_locks",
                                  "reductions", "multilevel", "hoisting"])
def test_tls_correct_with_single_optimization_off(flag):
    options = StlOptions(**{flag: False})
    run_case(CASES["resetable-position"], stl_options=options)
    run_case(CASES["lcg-sync"], stl_options=options)


def test_parallel_loop_actually_speeds_up():
    report = run_case(CASES["independent-fill"])
    assert report.tls_speedup > 2.0


def test_serial_loop_not_selected():
    program = compile_source(CASES["serial-recurrence"])
    report = Jrpm().run(program)
    assert not report.plans or report.tls_speedup > 0.8


def test_shared_allocator_still_correct():
    from repro.core.pipeline import VmOptions
    run_case(CASES["alloc-in-loop"],
             vm_options=VmOptions(parallel_allocator=False))


def test_serializing_locks_still_correct():
    from repro.core.pipeline import VmOptions
    src = """
class Log {
    int entries;
    synchronized void add(int x) { entries += x & 3; }
}
class Main {
    static int main() {
        Log log = new Log();
        int[] a = new int[400];
        for (int i = 0; i < 400; i++) {
            a[i] = i * 5;
            log.add(i);
        }
        Sys.printInt(log.entries);
        return log.entries;
    }
}
"""
    run_case(src, vm_options=VmOptions(speculation_aware_locks=False))
