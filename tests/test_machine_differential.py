"""Differential tests: Hydra machine executing microJIT IR must match
the reference interpreter exactly on sequential programs."""

import pytest

from conftest import assert_same_behavior, wrap_main

PROGRAMS = {
    "arith": wrap_main("""
        int a = 12345;
        int b = -678;
        Sys.printInt(a + b); Sys.printInt(a - b); Sys.printInt(a * b);
        Sys.printInt(a / b); Sys.printInt(a % b);
        Sys.printInt(a & b); Sys.printInt(a | b); Sys.printInt(a ^ b);
        Sys.printInt(a << 3); Sys.printInt(b >> 2); Sys.printInt(b >>> 2);
        Sys.printInt(-a); Sys.printInt(~a);
        return 0;
    """),
    "float-math": wrap_main("""
        float x = 1.75;
        float y = -0.5;
        Sys.printFloat(x + y); Sys.printFloat(x - y);
        Sys.printFloat(x * y); Sys.printFloat(x / y);
        Sys.printFloat(-x);
        Sys.printFloat(Math.sqrt(2.0)); Sys.printFloat(Math.sin(1.0));
        Sys.printFloat(Math.exp(0.5)); Sys.printFloat(Math.log(3.0));
        Sys.printFloat(Math.pow(2.0, 10.0));
        Sys.printInt((int) (x * 100.0));
        return 0;
    """),
    "comparisons": wrap_main("""
        int t = 0;
        for (int a = -2; a <= 2; a++) {
            for (int b = -2; b <= 2; b++) {
                if (a < b) { t += 1; }
                if (a <= b) { t += 10; }
                if (a == b) { t += 100; }
                if (a != b) { t += 1000; }
                if (a >= b) { t += 10000; }
                if (a > b) { t += 100000; }
            }
        }
        Sys.printInt(t);
        return t;
    """),
    "arrays": wrap_main("""
        int[] a = new int[10];
        float[] f = new float[4];
        for (int i = 0; i < 10; i++) { a[i] = i * i - 3; }
        f[0] = 0.5; f[3] = f[0] * 4.0;
        int s = 0;
        for (int i = 0; i < a.length; i++) { s += a[i]; }
        Sys.printInt(s);
        Sys.printFloat(f[3]);
        Sys.printInt(a.length + f.length);
        return s;
    """),
    "matrix": wrap_main("""
        int[][] m = new int[3][4];
        for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 4; j++) { m[i][j] = i * 10 + j; }
        }
        int t = 0;
        for (int i = 0; i < 3; i++) {
            t += m[i][i] * m[i].length;
        }
        Sys.printInt(t);
        return t;
    """),
    "objects": """
class Node {
    int value;
    Node next;
    Node(int v) { value = v; }
    int sum() {
        if (next == null) { return value; }
        return value + next.sum();
    }
}
class Main {
    static int main() {
        Node head = new Node(1);
        head.next = new Node(2);
        head.next.next = new Node(3);
        Sys.printInt(head.sum());
        return head.sum();
    }
}
""",
    "virtual-calls": """
class Shape { int area() { return 0; } }
class Square extends Shape {
    int side;
    Square(int s) { side = s; }
    int area() { return side * side; }
}
class Rect extends Square {
    int other;
    Rect(int s, int o) { side = s; other = o; }
    int area() { return side * other; }
}
class Main {
    static int main() {
        int total = 0;
        Shape s = new Square(3);
        total += s.area();
        s = new Rect(3, 4);
        total += s.area();
        s = new Shape();
        total += s.area();
        Sys.printInt(total);
        return total;
    }
}
""",
    "statics": """
class Registry {
    static int count;
    static int[] slots;
    static void init(int n) { slots = new int[n]; count = 0; }
    static void add(int v) { slots[count] = v; count++; }
}
class Main {
    static int main() {
        Registry.init(5);
        for (int i = 0; i < 5; i++) { Registry.add(i * 7); }
        int t = 0;
        for (int i = 0; i < Registry.count; i++) { t += Registry.slots[i]; }
        Sys.printInt(t);
        return t;
    }
}
""",
    "synchronized": """
class Account {
    int balance;
    synchronized void deposit(int x) { balance += x; }
    synchronized int get() { return balance; }
}
class Main {
    static int main() {
        Account a = new Account();
        for (int i = 0; i < 20; i++) { a.deposit(i); }
        Sys.printInt(a.get());
        return a.get();
    }
}
""",
    "while-do": wrap_main("""
        int i = 0;
        int s = 0;
        while (i < 8) { s += i; i++; }
        do { s -= 1; i--; } while (i > 4);
        Sys.printInt(s);
        Sys.printInt(i);
        return s;
    """),
    "ternary-logic": wrap_main("""
        int score = 0;
        for (int x = 0; x < 20; x++) {
            score += x % 3 == 0 ? 2 : (x % 5 == 0 ? 10 : 1);
            int flag = (x > 5 && x < 15) || x == 18 ? 1 : 0;
            score += flag;
        }
        Sys.printInt(score);
        return score;
    """),
    "compound-targets": """
class Holder { int v; int[] data; }
class Main {
    static int main() {
        Holder h = new Holder();
        h.data = new int[4];
        h.v = 5;
        h.v += 3;
        h.v *= 2;
        h.data[1] = 10;
        h.data[1] += h.v;
        h.data[1] <<= 1;
        int k = 2;
        h.data[k++] = 7;
        Sys.printInt(h.v);
        Sys.printInt(h.data[1]);
        Sys.printInt(h.data[2]);
        Sys.printInt(k);
        return 0;
    }
}
""",
    "string-of-calls": """
class Math2 {
    static int gcd(int a, int b) {
        while (b != 0) { int t = a % b; a = b; b = t; }
        return a;
    }
    static int lcm(int a, int b) { return a / gcd(a, b) * b; }
}
class Main {
    static int main() {
        Sys.printInt(Math2.gcd(48, 36));
        Sys.printInt(Math2.lcm(4, 6));
        Sys.printInt(Math2.gcd(17, 5));
        return 0;
    }
}
""",
    "intrinsic-minmax": wrap_main("""
        int lo = 999;
        int hi = -999;
        for (int i = 0; i < 30; i++) {
            int v = (i * 37 + 5) % 100 - 50;
            lo = Math.imin(lo, v);
            hi = Math.imax(hi, v);
        }
        Sys.printInt(lo);
        Sys.printInt(hi);
        Sys.printInt(Math.iabs(-42));
        return lo + hi;
    """),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_machine_matches_interpreter(name):
    assert_same_behavior(PROGRAMS[name])


def test_annotated_code_behaves_identically():
    from conftest import interp, machine_run
    src = PROGRAMS["comparisons"]
    expected = interp(src)
    actual = machine_run(src, annotated=True)
    assert actual.output == expected.output
    assert actual.return_value == expected.return_value


def test_annotation_overhead_is_small():
    from conftest import machine_run
    src = PROGRAMS["comparisons"]
    plain = machine_run(src)
    annotated = machine_run(src, annotated=True)
    slowdown = annotated.cycles / plain.cycles
    assert 1.0 <= slowdown < 1.8


def test_machine_counts_cycles_and_instructions():
    from conftest import machine_run
    result = machine_run(wrap_main("return 1 + 2;"))
    assert result.cycles >= result.instructions > 0
