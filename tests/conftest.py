"""Shared test helpers."""

import pytest

from repro.bytecode import run_program
from repro.hydra.config import HydraConfig
from repro.hydra.machine import Machine
from repro.jit.compiler import compile_annotated, compile_program
from repro.minijava import compile_source


@pytest.fixture
def config():
    return HydraConfig()


def interp(src, *args):
    """Compile MiniJava and run on the reference interpreter."""
    return run_program(compile_source(src), *args)


def machine_run(src, *args, config=None, annotated=False, profiler=None):
    """Compile MiniJava through the microJIT and run on the machine."""
    cfg = config or HydraConfig()
    program = compile_source(src)
    builder = compile_annotated if annotated else compile_program
    compiled = builder(program, cfg)
    machine = Machine(compiled, cfg, profiler=profiler)
    return machine.run(*args)


def wrap_main(body, prelude=""):
    """Wrap statements into a minimal main method."""
    return """
class Main {
    %s
    static int main() {
        %s
    }
}
""" % (prelude, body)


def assert_same_behavior(src, *args):
    """The machine must match the reference interpreter exactly."""
    expected = interp(src, *args)
    actual = machine_run(src, *args)
    assert actual.guest_exception is None
    assert actual.output == expected.output
    assert actual.return_value == expected.return_value
    return expected, actual
