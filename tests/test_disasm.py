"""Disassembler smoke/shape tests."""

from repro.bytecode.disasm import (disassemble_ir, disassemble_method,
                                   disassemble_program, disassemble_stl)
from repro.hydra.config import HydraConfig
from repro.jit.compiler import compile_program
from repro.minijava import compile_source

from conftest import wrap_main

SOURCE = """
class Counter {
    int value;
    synchronized void add(int x) { value += x; }
}
class Main {
    static int main() {
        Counter c = new Counter();
        for (int i = 0; i < 10; i++) { c.add(i); }
        return c.value;
    }
}
"""


def test_disassemble_method_shows_names_and_targets():
    program = compile_source(SOURCE)
    text = disassemble_method(program.resolve_method("Main", "main"))
    assert "Main.main" in text
    assert "GOTO" in text
    assert "; i" in text            # local-variable name annotation
    assert ">" in text              # branch-target marker


def test_disassemble_program_lists_classes():
    text = disassemble_program(compile_source(SOURCE))
    assert "class Counter" in text
    assert "synchronized Counter.add" in text
    assert "class Main" in text


def test_disassemble_ir():
    program = compile_source(wrap_main("""
        int s = 0;
        for (int i = 0; i < 5; i++) { s += i; }
        return s;
    """))
    compiled = compile_program(program, HydraConfig())
    text = disassemble_ir(compiled.methods["Main.main"].code)
    assert "ADDI" in text or "ADD" in text
    assert "RET" in text


def test_disassemble_stl():
    from repro.hydra.machine import Machine
    from repro.jit.compiler import compile_annotated
    from repro.jit.stl import StlOptions, recompile_with_stls
    from repro.tracer import Selector, TestProfiler
    config = HydraConfig()
    program = compile_source(wrap_main("""
        int[] a = new int[300];
        int s = 0;
        for (int i = 0; i < 300; i++) { a[i] = i; s += i; }
        Sys.printInt(s);
        return s;
    """))
    annotated = compile_annotated(program, config)
    profiler = TestProfiler(config, annotated.loop_table)
    Machine(annotated, config, profiler=profiler).run()
    plans = Selector(config, annotated.loop_table).select(profiler.stats)
    compiled = recompile_with_stls(program, config, plans, StlOptions())
    descriptor = next(iter(compiled.methods["Main.main"].stls.values()))
    text = disassemble_stl(descriptor)
    assert "thread code:" in text
    assert "warm entry" in text
    assert "STL_EOI_END" in text
    assert "reductions" in text
