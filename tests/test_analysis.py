"""Static dependence analysis (repro.analysis): classification,
linear forms, pruning safety, model round-trips and pipeline wiring."""

import pytest

from repro.analysis import (ABSENT, MAY, MUST, AnalysisReport, CONST,
                            KIND_GENERAL, KIND_INDUCTOR, KIND_REDUCTION,
                            analyze_program, linearize, strongest,
                            validate_analysis_dict)
from repro.core.pipeline import Jrpm
from repro.hydra.config import HydraConfig
from repro.jit.compiler import compile_annotated
from repro.minijava import compile_source
from repro.workloads import lookup, names

from conftest import wrap_main


def analyzed(src, threshold=1.2):
    return analyze_program(compile_source(src), threshold=threshold)


def only_loop(report):
    assert len(report.loops) == 1, [l.key for l in report.loops]
    return report.loops[0]


def loop_at_line(report, line):
    for loop in report.loops:
        if loop.line == line:
            return loop
    raise AssertionError("no loop at line %d in %s"
                         % (line, [l.line for l in report.loops]))


# -- lattice + linear forms --------------------------------------------------

def test_lattice_strongest():
    assert strongest([]) == ABSENT
    assert strongest([ABSENT, MAY]) == MAY
    assert strongest([MAY, MUST, ABSENT]) == MUST


def test_linearize_affine_forms():
    i = ("entry", 2)
    assert linearize(("const", 7)) == {CONST: 7}
    assert linearize(i) == {i: 1, CONST: 0}
    # (i * 3) + 5, read through a use wrapper
    expr = ("binop", "iadd",
            ("binop", "imul", ("use", 2, 10, i), ("const", 3)),
            ("const", 5))
    assert linearize(expr) == {i: 3, CONST: 5}
    # i << 2 scales by 4; i - i cancels to a pure constant
    assert linearize(("binop", "ishl", i, ("const", 2))) == \
        {i: 4, CONST: 0}
    assert linearize(("binop", "isub", i, i)) == {CONST: 0}


def test_linearize_rejects_nonlinear():
    i, j = ("entry", 2), ("entry", 3)
    assert linearize(("binop", "imul", i, j)) is None
    assert linearize(("binop", "idiv", i, ("const", 2))) is None
    assert linearize(("elem", i, j, 4)) is None


# -- classification on purpose-built loops -----------------------------------

def test_reduction_loop_is_absent():
    loop = only_loop(analyzed(wrap_main("""
        int s = 0;
        for (int i = 0; i < 100; i++) { s = s + i; }
        return s;
    """)))
    assert loop.classification == ABSENT
    kinds = {reg.local: reg.kind for reg in loop.carried}
    assert KIND_INDUCTOR in kinds.values()
    assert KIND_REDUCTION in kinds.values()


def test_scalar_recurrence_is_must():
    loop = only_loop(analyzed(wrap_main("""
        int prev = 7;
        int out = 0;
        for (int i = 0; i < 100; i++) {
            out = out + prev;
            prev = prev * 3 + i;
        }
        return out + prev;
    """)))
    assert loop.classification == MUST
    must = [dep for dep in loop.must_deps() if dep.kind == "local"]
    assert must, [dep.to_dict() for dep in loop.deps]
    assert any(reg.kind == KIND_GENERAL for reg in loop.carried)


def test_array_recurrence_distance():
    loop = only_loop(analyzed(wrap_main("""
        int[] a = new int[64];
        for (int i = 4; i < 64; i++) { a[i] = a[i - 4] + 1; }
        return a[63];
    """)))
    assert loop.classification == MUST
    arcs = [dep for dep in loop.deps if dep.kind == "array"
            and dep.classification == MUST]
    assert arcs and arcs[0].distance == 4


def test_same_iteration_array_reuse_is_absent():
    loop = only_loop(analyzed(wrap_main("""
        int[] a = new int[64];
        int s = 0;
        for (int i = 0; i < 64; i++) { a[i] = i; s = s + a[i]; }
        return s;
    """)))
    assert loop.classification == ABSENT


def test_backward_array_flow_is_absent():
    # a[i] written this iteration is read at i+4 *later*, i.e. the read
    # happens before the write in iteration space: distance <= 0.
    loop = only_loop(analyzed(wrap_main("""
        int[] a = new int[64];
        int s = 0;
        for (int i = 0; i < 60; i++) { s = s + a[i + 4]; a[i] = i; }
        return s;
    """)))
    assert loop.classification == ABSENT


def test_call_in_body_caps_absent_at_may():
    report = analyzed(wrap_main("""
        int s = 0;
        for (int i = 0; i < 10; i++) { s = s + f(i); }
        return s;
    """, prelude="static int f(int x) { return x * 2; }"))
    loop = only_loop(report)
    assert loop.has_calls
    assert loop.classification == MAY


def test_static_field_recurrence_is_must():
    report = analyzed("""
class Main {
    static int acc;
    static int main() {
        Main.acc = 1;
        int junk = 0;
        for (int i = 0; i < 50; i++) {
            junk = junk + Main.acc;
            Main.acc = Main.acc + i;
        }
        return junk;
    }
}
""")
    loop = only_loop(report)
    assert loop.classification == MUST
    assert any(dep.kind == "static" and dep.classification == MUST
               for dep in loop.deps)


def test_prune_only_fires_below_threshold():
    # tight recurrence: nearly the whole body is on the carried chain
    src = wrap_main("""
        int prev = 1;
        for (int i = 0; i < 100; i++) { prev = prev * 3 + 1; }
        return prev;
    """)
    tight = only_loop(analyzed(src))
    assert tight.classification == MUST
    assert tight.speedup_bound is not None
    assert tight.pruned == (tight.speedup_bound < 1.2)
    # same loop under an impossible threshold is always pruned
    assert only_loop(analyzed(src, threshold=1000.0)).pruned


# -- model round-trip + validation -------------------------------------------

def bitops_analysis():
    return analyze_program(
        compile_source(lookup("BitOps").source("small")))


def test_report_round_trip_and_validator():
    report = bitops_analysis()
    data = report.to_dict()
    assert list(validate_analysis_dict(data)) == []
    again = AnalysisReport.from_dict(data)
    assert again.to_dict() == data
    assert again.counts() == report.counts()
    assert again.prune_set() == report.prune_set()


def test_validator_catches_corruption():
    data = bitops_analysis().to_dict()
    data["loops"][0]["classification"] = "sometimes"
    assert any("classification" in problem
               for problem in validate_analysis_dict(data))
    data = bitops_analysis().to_dict()
    data["loops"][0]["pruned"] = True
    data["loops"][0]["prune_reason"] = None
    assert list(validate_analysis_dict(data))


# -- annotator prune guard ---------------------------------------------------

REDUCTION_SRC = wrap_main("""
    int s = 0;
    for (int i = 0; i < 100; i++) { s = s + i; }
    return s;
""")


def _meta_of(compiled):
    metas = list(compiled.loop_table.values())
    assert len(metas) == 1
    return metas[0]


def test_prune_decision_demotes_general_local():
    src = wrap_main("""
        int prev = 1;
        for (int i = 0; i < 100; i++) { prev = prev * 3 + 1; }
        return prev;
    """)
    # an impossible threshold forces the prune decision; the guard
    # only cares that the decision's locals are IR-general
    analysis = analyze_program(compile_source(src), threshold=1000.0)
    prune = analysis.prune_set()
    assert prune, "expected the tight recurrence to be pruned"
    baseline = _meta_of(compile_annotated(compile_source(src),
                                          HydraConfig()))
    assert baseline.candidate
    pruned = _meta_of(compile_annotated(compile_source(src),
                                        HydraConfig(), prune=prune))
    assert not pruned.candidate
    assert pruned.reject_reason.startswith("static:")


def test_prune_guard_ignores_stale_line():
    src = wrap_main("""
        int prev = 1;
        for (int i = 0; i < 100; i++) { prev = prev * 3 + 1; }
        return prev;
    """)
    prune = analyze_program(compile_source(src),
                            threshold=1000.0).prune_set()
    stale = {key: (line + 1, reason, involved)
             for key, (line, reason, involved) in prune.items()}
    meta = _meta_of(compile_annotated(compile_source(src),
                                      HydraConfig(), prune=stale))
    assert meta.candidate


def test_prune_guard_ignores_non_general_locals():
    # claim the reduction local carries a must-dependence: the IR
    # classifier knows better (it will privatize it), so the guard must
    # refuse to demote the loop
    compiled = compile_annotated(compile_source(REDUCTION_SRC),
                                 HydraConfig())
    meta = _meta_of(compiled)
    reduction_regs = [reg for reg, info in meta.carried_kinds.items()
                      if info.kind == KIND_REDUCTION]
    assert reduction_regs
    bogus = {("Main.main", meta.ordinal):
             (meta.line, "static: bogus", (reduction_regs[0] - 1,))}
    meta = _meta_of(compile_annotated(compile_source(REDUCTION_SRC),
                                      HydraConfig(), prune=bogus))
    assert meta.candidate


# -- pipeline + service wiring -----------------------------------------------

def test_run_options_analysis_changes_fingerprint():
    from repro.service.jobs import JobSpec, job_fingerprint
    from repro.service.options import RunOptions
    plain = JobSpec(verb="run", source=REDUCTION_SRC)
    analyzed_spec = JobSpec(verb="run", source=REDUCTION_SRC,
                            options=RunOptions(analysis=True))
    assert job_fingerprint(plain) != job_fingerprint(analyzed_spec)


def test_run_request_cache_key_diverges_on_analysis():
    from repro.runner.suite import RunRequest
    from repro.service.options import RunOptions
    plain = RunRequest.from_options("BitOps", RunOptions(),
                                    size="small")
    flagged = RunRequest.from_options("BitOps",
                                      RunOptions(analysis=True),
                                      size="small")
    assert flagged.analysis
    assert plain.cache_key() != flagged.cache_key()


def test_report_carries_analysis_through_round_trip():
    from repro.core.pipeline import JrpmReport
    program = compile_source(lookup("BitOps").source("small"))
    report = Jrpm(analysis=True).run(program, name="BitOps")
    assert report.outputs_match()
    assert report.analysis is not None
    again = JrpmReport.from_dict(report.to_dict())
    assert again.analysis.to_dict() == report.analysis.to_dict()


CONFIRMED_ARC_SRC = """
class Main {
    static int main() {
        int[] a = new int[256];
        int prev = 7;
        int total = 0;
        for (int i = 0; i < 256; i++) {
            int cur = (prev * 31 + i) % 1000;
            a[i] = cur;
            if (cur > 500) { total += cur; }
            prev = cur - (total % 7);
        }
        return total + prev;
    }
}
"""


def test_analyze_cross_check_confirms_observed_arc():
    analysis, _ = Jrpm().analyze(compile_source(CONFIRMED_ARC_SRC))
    loop = analysis.loops[0]
    assert loop.classification == MUST
    assert loop.agreement is not None
    assert loop.agreement["confirmed"], loop.agreement
    assert not loop.agreement["missed"]


def test_analyze_acceptance_absent_and_must_with_agreement():
    """The ISSUE acceptance shape: one `jrpm analyze` run showing at
    least one provably-absent and one must-dependence loop, each with
    profiler agreement attached."""
    program = compile_source(lookup("BitOps").source("small"))
    analysis, _ = Jrpm().analyze(program)
    classes = [loop.classification for loop in analysis.loops]
    assert ABSENT in classes
    assert MUST in classes
    assert all(loop.agreement is not None for loop in analysis.loops)


def test_analyze_service_verb_and_cli_shapes():
    from repro.service import Session
    with Session.local(use_store=False) as session:
        result = session.analyze(lookup("BitOps").source("small"),
                                 name="BitOps")
    assert list(validate_analysis_dict(result["analysis"])) == []
    assert {loop["classification"] for loop in result["loops"]} >= \
        {ABSENT, MUST}
    # the soundness invariant the CLI turns into its exit code
    assert not any(loop["pruned"] and loop["selected"]
                   for loop in result["loops"])


# -- differential pruning safety (ISSUE acceptance) --------------------------

@pytest.mark.slow
@pytest.mark.parametrize("name", names())
def test_static_prune_never_removes_selected_loop(name):
    """Over the whole registry: no loop the dynamic selector commits is
    ever statically pruned (the annotator guard included)."""
    source = lookup(name).source("small")
    analysis = analyze_program(compile_source(source))
    prune = analysis.prune_set()
    report = Jrpm().run(compile_source(source), name=name)
    selected = {(plan.meta.method_name, plan.meta.ordinal)
                for plan in report.plans.values()}
    if not prune:
        return
    # which decisions the annotator would actually honor
    compiled = compile_annotated(compile_source(source), HydraConfig(),
                                 prune=prune)
    demoted = {(meta.method_name, meta.ordinal)
               for meta in compiled.loop_table.values()
               if not meta.candidate
               and (meta.reject_reason or "").startswith("static:")}
    assert not (demoted & selected), (
        "%s: statically pruned %s but the selector commits them"
        % (name, sorted(demoted & selected)))
