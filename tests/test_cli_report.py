"""CLI and report-formatting tests."""

import os

import pytest

from repro.cli import main
from repro.core.pipeline import Jrpm
from repro.core.report import format_report, format_suite_summary
from repro.minijava import compile_source

from conftest import wrap_main

SOURCE = wrap_main("""
    int[] a = new int[500];
    for (int i = 0; i < 500; i++) { a[i] = i * 3 % 97; }
    int s = 0;
    for (int i = 0; i < 500; i++) { s += a[i]; }
    Sys.printInt(s);
    return s;
""")


@pytest.fixture(scope="module")
def report():
    return Jrpm().run(compile_source(SOURCE), name="cli-test")


def test_format_report_basics(report):
    text = format_report(report)
    assert "cli-test" in text
    assert "actual TLS speedup" in text
    assert "outputs match" in text


def test_format_report_verbose_lists_plans(report):
    text = format_report(report, verbose=True)
    assert "selected decompositions" in text
    assert "TEST profile" in text


def test_format_suite_summary(report):
    text = format_suite_summary({"monteCarlo": report})
    assert "integer" in text
    assert "geomean" in text
    assert "paper band" in text


def test_cli_run(tmp_path, capsys):
    path = tmp_path / "prog.mj"
    path.write_text(SOURCE)
    code = main(["run", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "actual TLS speedup" in out


def test_cli_run_verbose_and_cpus(tmp_path, capsys):
    path = tmp_path / "prog.mj"
    path.write_text(SOURCE)
    code = main(["run", str(path), "--verbose", "--cpus", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "on 2 CPUs" in out


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "raytrace" in out


def test_cli_profile(tmp_path, capsys):
    path = tmp_path / "prog.mj"
    path.write_text(SOURCE)
    assert main(["profile", str(path)]) == 0
    out = capsys.readouterr().out
    assert "SELECTED" in out


def test_cli_bench_small(capsys):
    assert main(["bench", "FourierTest", "--size", "small"]) == 0
    out = capsys.readouterr().out
    assert "FourierTest" in out
