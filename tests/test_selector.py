"""STL selection heuristics (paper §3.1)."""

from repro.hydra.config import HydraConfig
from repro.tracer.selector import Selector
from repro.tracer.stats import LoopStats
from repro.jit.annotate import LoopMeta


def make_meta(loop_id, parent_id=None, depth=1, candidate=True):
    meta = LoopMeta(loop_id, "Main.main", loop_id, depth, 20, {},
                    candidate, None if candidate else "test", 1)
    meta.parent_id = parent_id
    return meta


def make_stats(loop_id, threads=2000, avg_cycles=200.0, entries=1,
               overflow=0, arc_threads=0, constraint=0.0):
    stats = LoopStats(loop_id)
    stats.threads = threads
    stats.profiled_entries = entries
    stats.entries = entries
    stats.total_thread_cycles = avg_cycles * threads
    stats.overflow_threads = overflow
    stats.arc_threads = arc_threads
    stats.sum_critical_constraint = constraint * arc_threads
    return stats


def make_selector(metas):
    return Selector(HydraConfig(), {m.loop_id: m for m in metas})


def test_parallel_loop_predicts_near_ncpu():
    selector = make_selector([make_meta(1)])
    prediction = selector.predict(make_stats(1))
    assert 3.0 < prediction.speedup <= 4.0


def test_serial_loop_predicts_no_speedup():
    selector = make_selector([make_meta(1)])
    stats = make_stats(1, arc_threads=2000, constraint=210.0)
    prediction = selector.predict(stats)
    assert prediction.speedup < 1.2


def test_overflow_suppresses_selection():
    selector = make_selector([make_meta(1)])
    stats = make_stats(1, overflow=1500)
    prediction = selector.predict(stats)
    assert not selector.eligible(stats, prediction)


def test_few_iterations_per_entry_rejected():
    selector = make_selector([make_meta(1)])
    stats = make_stats(1, threads=2000, entries=1500)
    prediction = selector.predict(stats)
    assert not selector.eligible(stats, prediction)


def test_small_threads_dominated_by_overheads():
    selector = make_selector([make_meta(1)])
    stats = make_stats(1, avg_cycles=6.0, entries=400)
    prediction = selector.predict(stats)
    assert prediction.speedup < 2.0


def test_select_picks_parallel_loop():
    selector = make_selector([make_meta(1)])
    plans = selector.select({1: make_stats(1)})
    assert 1 in plans


def test_nest_conflict_prefers_better_benefit():
    outer = make_meta(1)
    inner = make_meta(2, parent_id=1, depth=2)
    selector = make_selector([outer, inner])
    stats = {
        1: make_stats(1, threads=100, avg_cycles=2000.0),
        2: make_stats(2, threads=2000, avg_cycles=90.0, entries=100),
    }
    plans = selector.select(stats)
    assert len([p for p in plans.values()
                if not p.multilevel_inner]) == 1
    assert 1 in plans     # outer has more coverage at equal parallelism


def test_serial_outer_lets_inner_win():
    outer = make_meta(1)
    inner = make_meta(2, parent_id=1, depth=2)
    selector = make_selector([outer, inner])
    stats = {
        1: make_stats(1, threads=100, avg_cycles=2000.0,
                      arc_threads=100, constraint=2100.0),
        2: make_stats(2, threads=2000, avg_cycles=90.0, entries=100),
    }
    plans = selector.select(stats)
    assert 2 in plans and 1 not in plans


def test_dynamic_nesting_conflict():
    a = make_meta(1)
    b = make_meta(2)      # statically unrelated (different method)
    selector = make_selector([a, b])
    stats = {
        1: make_stats(1, threads=200, avg_cycles=1000.0),
        2: make_stats(2, threads=4000, avg_cycles=100.0, entries=200),
    }
    plans = selector.select(stats, dynamic_nesting={(1, 2)})
    assert len(plans) == 1


def test_non_candidate_never_selected():
    selector = make_selector([make_meta(1, candidate=False)])
    plans = selector.select({1: make_stats(1)})
    assert plans == {}


def test_sync_plan_for_frequent_short_arc():
    meta = make_meta(1)
    selector = make_selector([meta])
    stats = make_stats(1, avg_cycles=300.0)
    stats.arc_threads = 1900
    stats.sum_critical_constraint = 1900 * 30.0
    arc = stats.arc_for(("local", 1, 0), ("local", 1, 0))
    arc.count = 1900
    arc.sum_length = 1900 * 12.0
    arc.sum_constraint = 1900 * 30.0
    # Store lands mid-thread: deeper than the natural stagger
    # ((300+5)/4 cycles) but well short of half the thread.
    arc.sum_store_offset = 1900 * 110.0
    arc.min_distance = 1
    plans = selector.select({1: stats})
    assert 1 in plans
    assert plans[1].sync is not None
    assert plans[1].sync.local_slot == (1, 0)


def test_no_sync_for_rare_arc():
    meta = make_meta(1)
    selector = make_selector([meta])
    stats = make_stats(1, avg_cycles=300.0)
    stats.arc_threads = 100
    stats.sum_critical_constraint = 100 * 30.0
    arc = stats.arc_for(("x",), ("y",))
    arc.count = 100
    arc.sum_length = 100 * 12.0
    plans = selector.select({1: stats})
    assert 1 in plans and plans[1].sync is None


def test_multilevel_inner_planned_for_rare_inner_loop():
    outer = make_meta(1)
    inner = make_meta(2, parent_id=1, depth=2)
    selector = make_selector([outer, inner])
    stats = {
        1: make_stats(1, threads=2000, avg_cycles=300.0),
        2: make_stats(2, threads=600, avg_cycles=150.0, entries=20),
    }
    plans = selector.select(stats)
    assert 1 in plans
    assert 2 in plans and plans[2].multilevel_inner
    assert plans[2].multilevel_parent == 1


def test_hoisting_for_frequently_entered_nested_loop():
    outer = make_meta(1)
    inner = make_meta(2, parent_id=1, depth=2)
    selector = make_selector([outer, inner])
    stats = {
        1: make_stats(1, threads=50, avg_cycles=4000.0,
                      arc_threads=50, constraint=4100.0),
        2: make_stats(2, threads=2500, avg_cycles=100.0, entries=50),
    }
    plans = selector.select(stats)
    assert 2 in plans
    assert plans[2].hoist
