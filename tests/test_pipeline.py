"""The five-step Jrpm pipeline and its report (paper Fig. 1, 8, 9)."""

import pytest

from repro import Jrpm, compile_source
from repro.hydra.config import HydraConfig

from conftest import wrap_main

PROGRAM = wrap_main("""
    int[] a = new int[1200];
    for (int i = 0; i < 1200; i++) { a[i] = (i * 31 + 7) % 257; }
    int s = 0;
    for (int i = 0; i < 1200; i++) { s += a[i] & 63; }
    Sys.printInt(s);
    return s;
""")


@pytest.fixture(scope="module")
def report():
    return Jrpm().run(compile_source(PROGRAM), name="pipeline-test")


def test_all_three_runs_recorded(report):
    assert report.sequential.cycles > 0
    assert report.profiling.cycles > report.sequential.cycles
    assert 0 < report.tls.cycles < report.sequential.cycles


def test_profiling_slowdown_in_paper_band(report):
    # Paper §3.2: average 7.8%, worst ~25%; our band is looser but the
    # slowdown must be small and nonzero.
    assert 1.0 < report.profiling_slowdown < 1.6


def test_speedup_properties(report):
    assert report.tls_speedup > 2.0
    assert report.predicted_speedup > 1.2


def test_prediction_close_to_actual(report):
    # TEST predictions are optimistic but in the ballpark (Fig. 8).
    ratio = report.predicted_speedup / report.tls_speedup
    assert 0.6 < ratio < 2.0


def test_plans_and_loop_table(report):
    assert report.plans
    for plan in report.plans.values():
        assert plan.loop_id in report.loop_table
        assert plan.prediction.speedup > 1.2


def test_compile_cycles_positive(report):
    assert report.compile_cycles > 0
    assert report.recompile_cycles > 0


def test_profile_fraction_reflects_iteration_target(report):
    # 1200 iterations of the dominant loop vs the scaled 100-iteration
    # target: a small slice of the run is spent profiling.
    assert 0.0 < report.profile_fraction < 0.3


def test_profile_fraction_with_paper_target(report):
    from repro.hydra.config import HydraConfig
    paper = Jrpm(config=HydraConfig(profile_iteration_target=1000)).run(
        compile_source(PROGRAM))
    assert paper.profile_fraction > report.profile_fraction


def test_total_speedup_accounts_for_overheads(report):
    assert report.total_speedup <= report.tls_speedup
    phases = report.phase_cycles()
    assert set(phases) == {"application", "gc", "compile", "profiling",
                           "recompile"}
    assert abs(sum(phases.values()) - report.total_cycles_with_overheads) \
        < report.sequential.cycles * 0.05


def test_outputs_match(report):
    assert report.outputs_match()


def test_breakdown_present(report):
    assert report.breakdown is not None
    assert report.breakdown.commits > 0


def test_program_without_loops_passes_through():
    report = Jrpm().run(compile_source(wrap_main(
        "Sys.printInt(41 + 1); return 42;")))
    assert not report.plans
    assert report.tls.cycles == report.sequential.cycles
    assert report.tls_speedup == 1.0
    assert report.breakdown.serial > 0


def test_source_string_accepted_directly():
    report = Jrpm().run(PROGRAM)
    assert report.outputs_match()


def test_serial_fraction_between_zero_and_one(report):
    assert 0.0 <= report.serial_fraction <= 1.0


def test_run_jrpm_convenience():
    from repro import run_jrpm
    report = run_jrpm(wrap_main("""
        int t = 0;
        for (int i = 0; i < 300; i++) { t += i % 5; }
        Sys.printInt(t);
        return t;
    """), name="conv")
    assert report.name == "conv"
    assert report.outputs_match()


def test_retargetability_more_cpus(report):
    bigger = Jrpm(config=HydraConfig(num_cpus=8)).run(
        compile_source(PROGRAM))
    assert bigger.outputs_match()
    assert bigger.tls_speedup > report.tls_speedup


# -- staged pipeline API ------------------------------------------------------

def test_staged_api_matches_run_facade(report):
    """Driving the five stages by hand reproduces run() exactly."""
    jrpm = Jrpm()
    program = compile_source(PROGRAM)
    baseline = jrpm.compile_baseline(program)
    profile = jrpm.profile(program)
    plans = jrpm.select(profile)
    recompiled = jrpm.recompile(program, plans)
    tls = jrpm.execute_tls(recompiled, plans,
                           fallback=baseline.measurement)
    staged = jrpm.assemble_report("pipeline-test", baseline, profile,
                                  plans, tls)
    assert staged.to_dict() == report.to_dict()


def test_staged_artifacts_expose_their_measurements():
    jrpm = Jrpm()
    program = compile_source(PROGRAM)
    baseline = jrpm.compile_baseline(program)
    assert baseline.measurement.cycles > 0
    assert baseline.compile_cycles > 0
    profile = jrpm.profile(program)
    assert profile.annotations > 0
    assert profile.loop_table and profile.stats
    plans = jrpm.select(profile)
    assert plans
    recompiled = jrpm.recompile(program, plans)
    assert recompiled is not None
    tls = jrpm.execute_tls(recompiled, plans,
                           fallback=baseline.measurement)
    assert 0 < tls.measurement.cycles < baseline.measurement.cycles
    assert tls.recompile_cycles > 0


def test_execute_tls_without_plans_falls_back_to_baseline():
    jrpm = Jrpm()
    program = compile_source(wrap_main("""
        int x = 1 + 2;
        Sys.printInt(x);
        return x;
    """))
    baseline = jrpm.compile_baseline(program)
    assert jrpm.recompile(program, {}) is None
    tls = jrpm.execute_tls(None, {}, fallback=baseline.measurement)
    assert tls.measurement is baseline.measurement
    assert tls.breakdown.serial == baseline.measurement.cycles
    with pytest.raises(ValueError):
        jrpm.execute_tls(None, {})          # fallback is mandatory
