"""IR container unit tests: labels, finalize, defs/uses."""

import pytest

from repro.jit.ir import (IRInstr, IRMethod, IROp, Label, finalize,
                          finalize_with_positions, label_instr)


def test_finalize_resolves_labels():
    target = Label()
    code = [IRInstr(IROp.BEQZ, a=1, target=target),
            IRInstr(IROp.LI, dst=2, imm=1),
            label_instr(target),
            IRInstr(IROp.RET, a=2)]
    out = finalize(code)
    assert len(out) == 3                  # LABEL stripped
    assert out[0].target == 2             # index of RET


def test_finalize_with_positions():
    warm = Label("warm")
    code = [IRInstr(IROp.LI, dst=1, imm=0),
            label_instr(warm),
            IRInstr(IROp.RET, a=1)]
    out, positions = finalize_with_positions(code)
    assert positions[warm] == 1
    assert len(out) == 2


def test_finalize_does_not_mutate_label_form():
    target = Label()
    branch = IRInstr(IROp.J, target=target)
    code = [branch, label_instr(target), IRInstr(IROp.RET)]
    finalize(code)
    assert branch.target is target        # original untouched


def test_label_at_end_of_code():
    target = Label()
    code = [IRInstr(IROp.J, target=target), label_instr(target)]
    out = finalize(code)
    assert out[0].target == 1             # one past the last instruction


def test_defs_and_uses():
    add = IRInstr(IROp.ADD, dst=3, a=1, b=2)
    assert add.defs() == 3 and sorted(add.uses()) == [1, 2]
    store = IRInstr(IROp.SW, a=4, b=5, imm=0)
    assert store.defs() is None and sorted(store.uses()) == [4, 5]
    load = IRInstr(IROp.LW, dst=6, a=7, imm=4)
    assert load.defs() == 6 and load.uses() == [7]
    absolute = IRInstr(IROp.LW, dst=6, a=None, imm=0x8000)
    assert absolute.uses() == []
    call = IRInstr(IROp.CALL, dst=1, aux=("C", "m"), args=[2, 3])
    assert call.defs() == 1 and call.uses() == [2, 3]
    branch = IRInstr(IROp.BEQZ, a=9, target=Label())
    assert branch.defs() is None and branch.uses() == [9]
    annotation = IRInstr(IROp.SLOOP, imm=2, aux=1)
    assert annotation.defs() is None and annotation.uses() == []


def test_stl_run_uses_init_values():
    class FakeDesc:
        init_values = [(0, 5), (4, 6)]
        reductions = []
    run = IRInstr(IROp.STL_RUN, dst=1, aux=FakeDesc())
    assert sorted(run.uses()) == [5, 6]
    assert run.defs() == 1


def test_new_reg_monotonic():
    method = IRMethod("m", 0, False, 10)
    first = method.new_reg()
    second = method.new_reg()
    assert second == first + 1 == 11
    assert method.nregs == 12


def test_labels_unique_names():
    assert Label().name != Label().name


def test_irinstr_repr_is_readable():
    instr = IRInstr(IROp.ADDI, dst=2, a=1, imm=7)
    text = repr(instr)
    assert "ADDI" in text and "r2" in text and "#7" in text
