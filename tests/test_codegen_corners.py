"""Frontend code generation corners: scoping, conversions, errors."""

import pytest

from repro.errors import CompileError
from repro.minijava import compile_source

from conftest import assert_same_behavior, interp, wrap_main


class TestScoping:
    def test_block_scopes_reuse_slots(self):
        src = wrap_main("""
            int total = 0;
            { int x = 5; total += x; }
            { int y = 7; total += y; }
            return total;
        """)
        assert interp(src).return_value == 12

    def test_shadowing_in_nested_block_rejected(self):
        with pytest.raises(CompileError):
            interp(wrap_main("int x = 1; { int x = 2; } return x;"))

    def test_for_variable_out_of_scope_after_loop(self):
        with pytest.raises(CompileError):
            interp(wrap_main(
                "for (int i = 0; i < 3; i++) { } return i;"))

    def test_loop_variable_reusable_across_loops(self):
        src = wrap_main("""
            int t = 0;
            for (int i = 0; i < 3; i++) { t += i; }
            for (int i = 0; i < 4; i++) { t += i; }
            return t;
        """)
        assert interp(src).return_value == 3 + 6


class TestTypes:
    def test_int_to_float_promotion_in_assignment(self):
        assert_same_behavior(wrap_main(
            "float f = 3; Sys.printFloat(f); return 0;"))

    def test_float_to_int_requires_cast(self):
        with pytest.raises(CompileError):
            interp(wrap_main("int x = 1.5; return x;"))

    def test_explicit_cast_allowed(self):
        assert interp(wrap_main(
            "int x = (int) 1.9; return x;")).return_value == 1

    def test_mixed_comparison_promotes(self):
        assert_same_behavior(wrap_main(
            "int n = 3; float f = 3.5;"
            " Sys.printInt(n < f ? 1 : 0); return 0;"))

    def test_shift_on_float_rejected(self):
        with pytest.raises(CompileError):
            interp(wrap_main("float f = 1.0; int x = f << 1; return x;"))

    def test_modulo_on_floats(self):
        result = interp(wrap_main(
            "float f = 7.5 % 2.0; Sys.printFloat(f); return 0;"))
        assert result.output == [1.5]

    def test_condition_must_be_boolean_like(self):
        with pytest.raises(CompileError):
            interp("""
class Box { int v; }
class Main {
    static int main() {
        Box b = new Box();
        float f = 1.0;
        if (f) { return 1; }
        return 0;
    }
}
""")


class TestResolution:
    def test_unknown_variable(self):
        with pytest.raises(CompileError):
            interp(wrap_main("return missing;"))

    def test_unknown_method(self):
        with pytest.raises(CompileError):
            interp(wrap_main("return nothere(1);"))

    def test_unknown_class(self):
        with pytest.raises(CompileError):
            interp(wrap_main("Widget w = null; return 0;"))

    def test_wrong_arity(self):
        with pytest.raises(CompileError):
            interp("""
class Main {
    static int f(int a, int b) { return a + b; }
    static int main() { return f(1); }
}
""")

    def test_instance_method_from_static_context(self):
        with pytest.raises(CompileError):
            interp("""
class Main {
    int helper() { return 1; }
    static int main() { return helper(); }
}
""")

    def test_this_in_static_context(self):
        with pytest.raises(CompileError):
            interp("""
class Main {
    int v;
    static int main() { return this.v; }
}
""")

    def test_builtin_class_cannot_be_shadowed(self):
        with pytest.raises(CompileError):
            interp("class Math { } class Main { static int main() "
                   "{ return 0; } }")

    def test_duplicate_variable(self):
        with pytest.raises(CompileError):
            interp(wrap_main("int a = 1; int a = 2; return a;"))

    def test_break_outside_loop(self):
        with pytest.raises(CompileError):
            interp(wrap_main("break; return 0;"))


class TestImplicitThis:
    def test_field_access_without_this(self):
        src = """
class Counter {
    int n;
    void bump() { n = n + 1; }
    int twice() { bump(); bump(); return n; }
}
class Main {
    static int main() {
        Counter c = new Counter();
        return c.twice();
    }
}
"""
        assert_same_behavior(src)

    def test_assignment_to_field_without_this(self):
        src = """
class Holder {
    int v;
    Holder(int x) { v = x * 2; }
}
class Main {
    static int main() { return new Holder(21).v; }
}
"""
        assert interp(src).return_value == 42


class TestExpressionValues:
    def test_assignment_as_expression(self):
        assert_same_behavior(wrap_main(
            "int a = 0; int b = 0; a = b = 7;"
            " Sys.printInt(a); Sys.printInt(b); return a;"))

    def test_compound_assignment_value(self):
        assert_same_behavior(wrap_main(
            "int a = 5; int b = (a += 3); Sys.printInt(b); return a;"))

    def test_array_store_as_expression_value(self):
        assert_same_behavior(wrap_main(
            "int[] xs = new int[3]; int v = (xs[1] = 9);"
            " Sys.printInt(v); Sys.printInt(xs[1]); return v;"))

    def test_postfix_on_array_element(self):
        assert_same_behavior(wrap_main(
            "int[] xs = new int[2]; xs[0] = 5;"
            " int old = xs[0]++;"
            " Sys.printInt(old); Sys.printInt(xs[0]); return old;"))

    def test_prefix_on_field(self):
        assert_same_behavior("""
class Cell { int v; }
class Main {
    static int main() {
        Cell c = new Cell();
        c.v = 3;
        int got = ++c.v;
        Sys.printInt(got);
        Sys.printInt(c.v);
        return got;
    }
}
""")

    def test_compound_shift_assignment(self):
        assert_same_behavior(wrap_main(
            "int x = 3; x <<= 4; x >>>= 1; Sys.printInt(x); return x;"))

    def test_nested_array_expression(self):
        assert_same_behavior(wrap_main("""
            int[][] grid = new int[3][3];
            grid[1][2] = 5;
            grid[grid[1][2] % 3][1] = 9;
            Sys.printInt(grid[2][1]);
            return 0;
        """))
