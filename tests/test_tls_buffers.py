"""Unit tests for the speculative memory data path (forwarding, read
tags, buffer-limit flagging) with a stubbed runtime."""

import pytest

from repro.hydra.config import HydraConfig
from repro.hydra.machine import CpuContext, Machine
from repro.jit.compiler import compile_program
from repro.minijava import compile_source
from repro.tls.buffers import SpecMemoryInterface, SpecThreadState

from conftest import wrap_main


class _StubExecution:
    """Minimal speculation-services provider for the interface."""

    def __init__(self, threads):
        self.threads = threads
        self.overflowed = []
        self.stores = []
        self.head_iteration = min(t.iteration for t in threads)

    def less_speculative(self, spec):
        return sorted((t for t in self.threads
                       if t.iteration < spec.iteration),
                      key=lambda t: -t.iteration)

    def is_head(self, spec):
        return spec.iteration == self.head_iteration

    def flag_overflow(self, spec):
        self.overflowed.append(spec.iteration)
        spec.overflowed = True

    def notify_store(self, storer, addr):
        self.stores.append((storer.iteration, addr))


def make_world(num_threads=3, config=None):
    config = config or HydraConfig()
    program = compile_source(wrap_main("return 0;"))
    compiled = compile_program(program, config)
    machine = Machine(compiled, config)
    ctxs = []
    threads = []
    for iteration in range(num_threads):
        ctx = CpuContext(machine, iteration % config.num_cpus)
        thread = SpecThreadState(ctx.cpu_id, iteration, 0x100000)
        ctx.spec = thread
        threads.append(thread)
        ctxs.append(ctx)
    execution = _StubExecution(threads)
    for ctx in ctxs:
        ctx.mem = SpecMemoryInterface(ctx, execution)
    return machine, ctxs, threads, execution


ADDR = 0x40_0000


def test_load_from_committed_memory():
    machine, ctxs, threads, __ = make_world()
    machine.memory.store(ADDR, 77)
    value, latency = ctxs[0].mem.load(ADDR)
    assert value == 77
    assert latency >= 1


def test_store_is_buffered_not_committed():
    machine, ctxs, threads, __ = make_world()
    ctxs[1].mem.store(ADDR, 5)
    assert threads[1].store_buffer[ADDR] == 5
    assert machine.memory.load(ADDR) == 0


def test_forwarding_from_less_speculative_buffer():
    machine, ctxs, threads, __ = make_world()
    machine.memory.store(ADDR, 1)
    ctxs[0].mem.store(ADDR, 42)
    value, latency = ctxs[2].mem.load(ADDR)
    assert value == 42
    assert latency == machine.config.interprocessor_cycles


def test_forwarding_prefers_nearest_producer():
    machine, ctxs, threads, __ = make_world()
    ctxs[0].mem.store(ADDR, 10)
    ctxs[1].mem.store(ADDR, 20)
    value, __lat = ctxs[2].mem.load(ADDR)
    assert value == 20


def test_own_buffer_wins_and_protects():
    machine, ctxs, threads, __ = make_world()
    ctxs[1].mem.store(ADDR, 9)
    value, latency = ctxs[1].mem.load(ADDR)
    assert value == 9 and latency == 1
    # Read-after-own-write must not be vulnerable to earlier stores.
    assert threads[1].read_versions[ADDR] is False


def test_external_read_is_vulnerable():
    machine, ctxs, threads, __ = make_world()
    ctxs[1].mem.load(ADDR)
    assert threads[1].read_versions[ADDR] is True


def test_lwnv_sets_no_read_tag():
    machine, ctxs, threads, __ = make_world()
    ctxs[0].mem.store(ADDR, 3)
    value, __lat = ctxs[1].mem.lwnv(ADDR)
    assert value == 3
    assert ADDR not in threads[1].read_versions


def test_store_notifies_runtime():
    machine, ctxs, threads, execution = make_world()
    ctxs[0].mem.store(ADDR, 1)
    assert execution.stores == [(0, ADDR)]


def test_wild_address_reads_zero():
    machine, ctxs, threads, __ = make_world()
    value, latency = ctxs[1].mem.load(-4)
    assert value == 0 and latency == 1


def test_read_line_overflow_flagged():
    config = HydraConfig(load_buffer_lines=2)
    machine, ctxs, threads, execution = make_world(config=config)
    for k in range(3):
        ctxs[1].mem.load(ADDR + 32 * k)
    assert threads[1].overflowed
    assert execution.overflowed == [1]


def test_store_line_overflow_flagged():
    config = HydraConfig(store_buffer_lines=2)
    machine, ctxs, threads, execution = make_world(config=config)
    for k in range(3):
        ctxs[1].mem.store(ADDR + 32 * k, k)
    assert threads[1].overflowed


def test_head_thread_never_flags_overflow():
    config = HydraConfig(load_buffer_lines=1)
    machine, ctxs, threads, execution = make_world(config=config)
    for k in range(4):
        ctxs[0].mem.load(ADDR + 32 * k)      # iteration 0 == head
    assert not threads[0].overflowed


def test_reset_clears_speculative_state():
    machine, ctxs, threads, __ = make_world()
    ctxs[1].mem.store(ADDR, 1)
    ctxs[1].mem.load(ADDR + 64)
    threads[1].reset_speculative_state(iteration=5)
    assert not threads[1].store_buffer
    assert not threads[1].read_versions
    assert threads[1].iteration == 5
    assert threads[1].state == SpecThreadState.RUNNING


def test_same_line_reads_count_one_line():
    config = HydraConfig(load_buffer_lines=1)
    machine, ctxs, threads, execution = make_world(config=config)
    ctxs[1].mem.load(ADDR)
    ctxs[1].mem.load(ADDR + 4)
    ctxs[1].mem.load(ADDR + 28)
    assert len(threads[1].read_lines) == 1
    assert not threads[1].overflowed
