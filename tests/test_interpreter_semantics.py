"""Java semantics in the reference interpreter (the oracle)."""

import pytest

from repro.bytecode.instructions import f2i, i32, idiv, irem, u32
from repro.errors import (ArithmeticException, ArrayIndexException,
                          NullPointerException)

from conftest import interp, wrap_main


class TestInt32Helpers:
    def test_i32_wraps_positive_overflow(self):
        assert i32(2**31) == -2**31

    def test_i32_wraps_negative_overflow(self):
        assert i32(-2**31 - 1) == 2**31 - 1

    def test_i32_identity_in_range(self):
        assert i32(12345) == 12345
        assert i32(-12345) == -12345

    def test_u32_view(self):
        assert u32(-1) == 0xFFFFFFFF

    def test_idiv_truncates_toward_zero(self):
        assert idiv(-7, 2) == -3
        assert idiv(7, -2) == -3
        assert idiv(7, 2) == 3

    def test_irem_sign_follows_dividend(self):
        assert irem(-7, 3) == -1
        assert irem(7, -3) == 1

    def test_idiv_min_int_overflow_wraps(self):
        assert idiv(-2**31, -1) == -2**31

    def test_f2i_saturates(self):
        assert f2i(1e18) == 2**31 - 1
        assert f2i(-1e18) == -2**31

    def test_f2i_nan_is_zero(self):
        assert f2i(float("nan")) == 0

    def test_f2i_truncates(self):
        assert f2i(2.9) == 2
        assert f2i(-2.9) == -2


class TestArithmetic:
    def test_int_overflow_wraps(self):
        result = interp(wrap_main(
            "int x = 2147483647; x = x + 1; Sys.printInt(x); return 0;"))
        assert result.output == [-2147483648]

    def test_int_mul_wraps(self):
        result = interp(wrap_main(
            "int x = 100000 * 100000; Sys.printInt(x); return 0;"))
        assert result.output == [i32(100000 * 100000)]

    def test_java_division(self):
        result = interp(wrap_main(
            "Sys.printInt(-7 / 2); Sys.printInt(-7 % 2); return 0;"))
        assert result.output == [-3, -1]

    def test_div_by_zero_raises(self):
        with pytest.raises(ArithmeticException):
            interp(wrap_main("int z = 0; return 5 / z;"))

    def test_rem_by_zero_raises(self):
        with pytest.raises(ArithmeticException):
            interp(wrap_main("int z = 0; return 5 % z;"))

    def test_shift_count_masked_to_31(self):
        result = interp(wrap_main(
            "int s = 33; Sys.printInt(1 << s); return 0;"))
        assert result.output == [2]

    def test_ushr_on_negative(self):
        result = interp(wrap_main("Sys.printInt(-1 >>> 28); return 0;"))
        assert result.output == [15]

    def test_shr_arithmetic(self):
        result = interp(wrap_main("Sys.printInt(-8 >> 1); return 0;"))
        assert result.output == [-4]

    def test_float_div_by_zero_is_infinite(self):
        result = interp(wrap_main(
            "float z = 0.0; float x = 1.0 / z;"
            " Sys.printInt(x > 1000000.0 ? 1 : 0); return 0;"))
        assert result.output == [1]

    def test_int_float_promotion(self):
        result = interp(wrap_main(
            "float x = 3 + 0.5; Sys.printFloat(x); return 0;"))
        assert result.output == [3.5]


class TestRuntimeExceptions:
    def test_null_field_access(self):
        src = """
class Box { int v; }
class Main {
    static int main() { Box b = null; return b.v; }
}
"""
        with pytest.raises(NullPointerException):
            interp(src)

    def test_array_bounds_low(self):
        with pytest.raises(ArrayIndexException):
            interp(wrap_main(
                "int[] a = new int[3]; int i = -1; return a[i];"))

    def test_array_bounds_high(self):
        with pytest.raises(ArrayIndexException):
            interp(wrap_main(
                "int[] a = new int[3]; int i = 3; return a[i];"))

    def test_null_array_length(self):
        with pytest.raises(NullPointerException):
            interp(wrap_main("int[] a = null; return a.length;"))


class TestObjects:
    def test_fields_default_to_zero(self):
        src = """
class Box { int v; float f; Box next; }
class Main {
    static int main() {
        Box b = new Box();
        Sys.printInt(b.v);
        Sys.printFloat(b.f);
        Sys.printInt(b.next == null ? 1 : 0);
        return 0;
    }
}
"""
        assert interp(src).output == [0, 0.0, 1]

    def test_virtual_dispatch_uses_runtime_class(self):
        src = """
class Animal { int sound() { return 1; } }
class Dog extends Animal { int sound() { return 2; } }
class Main {
    static int main() {
        Animal a = new Dog();
        return a.sound();
    }
}
"""
        assert interp(src).return_value == 2

    def test_inherited_field_access(self):
        src = """
class Base { int x; }
class Derived extends Base { int y; }
class Main {
    static int main() {
        Derived d = new Derived();
        d.x = 5;
        d.y = 7;
        return d.x + d.y;
    }
}
"""
        assert interp(src).return_value == 12

    def test_static_fields_shared(self):
        src = """
class Counter { static int total; }
class Main {
    static int main() {
        Counter.total = 3;
        Counter.total += 4;
        return Counter.total;
    }
}
"""
        assert interp(src).return_value == 7

    def test_reference_identity_compare(self):
        src = wrap_main("""
        int[] a = new int[1];
        int[] b = new int[1];
        int[] c = a;
        Sys.printInt(a == b ? 1 : 0);
        Sys.printInt(a == c ? 1 : 0);
        return 0;
        """)
        assert interp(src).output == [0, 1]


class TestControlFlow:
    def test_short_circuit_and_skips_rhs(self):
        src = """
class Main {
    static int calls;
    static int bump() { calls++; return 1; }
    static int main() {
        int ok = (0 > 1 && bump() > 0) ? 1 : 0;
        Sys.printInt(calls);
        return ok;
    }
}
"""
        result = interp(src)
        assert result.output == [0] and result.return_value == 0

    def test_short_circuit_or_skips_rhs(self):
        src = """
class Main {
    static int calls;
    static int bump() { calls++; return 1; }
    static int main() {
        int ok = (1 > 0 || bump() > 0) ? 1 : 0;
        Sys.printInt(calls);
        return ok;
    }
}
"""
        result = interp(src)
        assert result.output == [0] and result.return_value == 1

    def test_break_and_continue(self):
        src = wrap_main("""
        int s = 0;
        for (int i = 0; i < 10; i++) {
            if (i == 3) { continue; }
            if (i == 7) { break; }
            s += i;
        }
        return s;
        """)
        assert interp(src).return_value == 0 + 1 + 2 + 4 + 5 + 6

    def test_nested_break_breaks_inner_only(self):
        src = wrap_main("""
        int s = 0;
        for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 10; j++) {
                if (j == 2) { break; }
                s++;
            }
        }
        return s;
        """)
        assert interp(src).return_value == 6

    def test_recursion(self):
        src = """
class Main {
    static int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
    static int main() { return fact(8); }
}
"""
        assert interp(src).return_value == 40320
